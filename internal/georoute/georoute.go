// Package georoute implements the position-based routing algorithms the
// paper's Section 3 surveys: greedy routing, compass routing and
// greedy-compass (predecessor-oblivious, origin-oblivious, 1-local —
// each defeated by some planar graph), and FACE-1 face routing, which
// guarantees delivery on plane embeddings at the price of Θ(log n) bits
// of message state (it is not stateless, exactly the trade-off the
// paper's model excludes).
package georoute

import (
	"errors"
	"fmt"

	"klocal/internal/geom"
	"klocal/internal/graph"
	"klocal/internal/route"
)

// ErrNoProgress is returned by face routing when no face switch closer to
// the destination exists — impossible on connected plane embeddings, so
// it indicates a non-planar input.
var ErrNoProgress = errors.New("georoute: face traversal found no crossing closer to t")

// Greedy returns the greedy position-based router: always forward to the
// neighbour geometrically closest to the destination (ties by label).
// 1-local, stateless and oblivious; defeated by local minima (see
// GreedyTrap).
func Greedy(e *geom.Embedding) route.Algorithm {
	return route.Algorithm{
		Name:             "Greedy",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, _ int) route.Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				target := e.Pos[t]
				best := graph.NoVertex
				bestD := 0.0
				//klocal:allow greedy is the 1-local position-based baseline; it reads only edges incident to u, i.e. G_1(u)
				g.EachAdj(u, func(w graph.Vertex) bool {
					if d := e.Pos[w].Dist2(target); best == graph.NoVertex || d < bestD {
						best, bestD = w, d
					}
					return true
				})
				if best == graph.NoVertex {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("georoute: greedy at isolated node %d", u)
				}
				return best, nil
			}
		},
	}
}

// Compass returns compass routing: forward along the edge forming the
// smallest angle with the segment toward the destination (ties by label).
func Compass(e *geom.Embedding) route.Algorithm {
	return route.Algorithm{
		Name:             "Compass",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, _ int) route.Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				pu, pt := e.Pos[u], e.Pos[t]
				best := graph.NoVertex
				bestA := 0.0
				//klocal:allow compass is the 1-local position-based baseline; it reads only edges incident to u, i.e. G_1(u)
				g.EachAdj(u, func(w graph.Vertex) bool {
					a := absAngleBetween(pu, pt, e.Pos[w])
					if best == graph.NoVertex || a < bestA-1e-15 {
						best, bestA = w, a
					}
					return true
				})
				if best == graph.NoVertex {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("georoute: compass at isolated node %d", u)
				}
				return best, nil
			}
		},
	}
}

// GreedyCompass returns the greedy-compass hybrid of Bose et al.: among
// the two neighbours angularly adjacent to the segment toward t (the
// closest clockwise and counterclockwise), forward to the one closer to
// t. Succeeds on every triangulation.
func GreedyCompass(e *geom.Embedding) route.Algorithm {
	return route.Algorithm{
		Name:             "GreedyCompass",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, _ int) route.Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				//klocal:allow greedy-compass is 1-local; degree of u is part of G_1(u)
				if g.Deg(u) == 0 {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("georoute: greedy-compass at isolated node %d", u)
				}
				//klocal:allow greedy-compass is 1-local; incidence of {u,t} is part of G_1(u)
				if g.HasEdge(u, t) {
					// The destination sits exactly on the reference ray,
					// which the rotational successors exclude.
					return t, nil
				}
				ccw := e.NextCCWFromPoint(u, e.Pos[t])
				cw := e.NextCWFromPoint(u, e.Pos[t])
				target := e.Pos[t]
				if e.Pos[ccw].Dist2(target) <= e.Pos[cw].Dist2(target) {
					return ccw, nil
				}
				return cw, nil
			}
		},
	}
}

// absAngleBetween returns the absolute angle at apex between the rays
// apex→a and apex→b, in [0, π].
func absAngleBetween(apex, a, b Point) float64 {
	d := angleDiff(apex.Angle(a), apex.Angle(b))
	return d
}

// Point aliases geom.Point for internal brevity.
type Point = geom.Point

func angleDiff(a, b float64) float64 {
	d := a - b
	for d > 3.141592653589793 {
		d -= 2 * 3.141592653589793
	}
	for d < -3.141592653589793 {
		d += 2 * 3.141592653589793
	}
	if d < 0 {
		return -d
	}
	return d
}

// FaceResult is the outcome of a FACE-1 run.
//
// Len returns the route length in edges; see the method below.
type FaceResult struct {
	// Route is the walk from s; it ends at t iff Delivered.
	Route []graph.Vertex
	// Delivered reports successful delivery.
	Delivered bool
	// FaceSwitches counts how many faces were traversed.
	FaceSwitches int
	// StateBits is the message overhead face routing needs: the progress
	// point p on the segment st (two coordinates) plus the traversal
	// bookkeeping — Θ(log n) bits, the paper's point about face routing
	// not being stateless.
	StateBits int
}

// Len returns the route length in edges.
func (r *FaceResult) Len() int {
	if len(r.Route) == 0 {
		return 0
	}
	return len(r.Route) - 1
}

// FaceRoute runs FACE-1 face routing on a plane embedding from s to t:
// traverse the boundary of the face containing the current progress
// point toward t, remember the boundary crossing with segment (p, t)
// closest to t, walk to it, cross, repeat. Guarantees delivery on
// connected plane embeddings (Kranakis, Singh, Urrutia; Bose et al.).
func FaceRoute(e *geom.Embedding, s, t graph.Vertex) (*FaceResult, error) {
	//klocal:allow face routing is the stateful comparator outside the paper's model (Section 3); endpoint validation reads the embedding's graph
	if !e.G.HasVertex(s) || !e.G.HasVertex(t) {
		return nil, fmt.Errorf("georoute: unknown endpoint")
	}
	//klocal:allow FaceRoute returns a freshly built per-call route trace by API design
	res := &FaceResult{Route: []graph.Vertex{s}, StateBits: 2*64 + 2}
	if s == t {
		res.Delivered = true
		return res, nil
	}
	target := e.Pos[t]
	// The face containing the germ of the ray s→t is the face to the left
	// of the directed edge (s, w) where w is s's first neighbour clockwise
	// from the ray; FaceWalkNext walks exactly the left faces. After each
	// crossing of an edge {x, y} (traversed x→y), the segment continues
	// into the face on the other side, which is the face left of (y, x).
	startU, startV := s, e.NextCWFromPoint(s, target)
	if startV == graph.NoVertex {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return nil, fmt.Errorf("georoute: node %d has no neighbours", s)
	}
	p := e.Pos[s]
	//klocal:allow face routing's switch budget is a global bound (2m+4); the algorithm is the out-of-model comparator
	maxSwitches := 2*e.G.M() + 4
	for iter := 0; iter < maxSwitches; iter++ {
		delivered, nextU, nextV, crossing, err := traverseFace(e, startU, startV, p, target, t, &res.Route)
		if err != nil {
			return res, err
		}
		if delivered {
			res.Delivered = true
			return res, nil
		}
		res.FaceSwitches++
		startU, startV = nextU, nextV
		p = crossing
	}
	//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
	return res, fmt.Errorf("georoute: face routing exceeded %d face switches (non-planar input?)", maxSwitches)
}

// traverseFace walks the face to the left of the directed edge
// (startU, startV), which intersects the open segment (p, target): a full
// scouting loop recording the boundary crossing closest to the target,
// then a second partial walk to the crossing edge {x, y}, which the
// message crosses (ending at y). It returns (delivered, next start
// directed edge (y, x), new progress point). The route slice is extended
// with every physical hop.
func traverseFace(e *geom.Embedding, startU, startV graph.Vertex, p, target Point, t graph.Vertex, routeOut *[]graph.Vertex) (bool, graph.Vertex, graph.Vertex, Point, error) {
	// Phase 1: scout the whole face (no physical movement yet).
	type dirEdge struct{ a, b graph.Vertex }
	var (
		bestQ    Point
		bestEdge dirEdge
		found    bool
	)
	bestD := p.Dist2(target)
	cu, cv := startU, startV
	for {
		if q, hit := geom.SegmentsIntersect(e.Pos[cu], e.Pos[cv], p, target); hit {
			if d := q.Dist2(target); d < bestD-1e-15 {
				bestD, bestQ, bestEdge, found = d, q, dirEdge{cu, cv}, true
			}
		}
		cu, cv = e.FaceWalkNext(cu, cv)
		if cu == startU && cv == startV {
			break
		}
	}
	if !found {
		return false, graph.NoVertex, graph.NoVertex, p, ErrNoProgress
	}
	// Phase 2: physically walk the face until the crossing edge, visiting
	// t early if the boundary passes through it.
	cu, cv = startU, startV
	for {
		*routeOut = append(*routeOut, cv)
		if cv == t {
			return true, graph.NoVertex, graph.NoVertex, p, nil
		}
		if cu == bestEdge.a && cv == bestEdge.b {
			// The crossing edge has been traversed; the message is now at
			// its far endpoint y = cv; the segment continues in the face
			// to the left of (y, x).
			return false, cv, cu, bestQ, nil
		}
		cu, cv = e.FaceWalkNext(cu, cv)
		if cu == startU && cv == startV {
			return false, graph.NoVertex, graph.NoVertex, p, fmt.Errorf("georoute: crossing edge not reached on second walk")
		}
	}
}

// FaceRouteAlgorithm wraps FaceRoute as a route.Algorithm whose bound
// function replays the precomputed stateful walk hop by hop — useful for
// plugging face routing into the common simulator and experiment
// harness. The walk is recomputed per (s, t) pair; the statefulness that
// the paper's model forbids lives inside the closure.
func FaceRouteAlgorithm(e *geom.Embedding) route.Algorithm {
	return route.Algorithm{
		Name:             "FaceRouting",
		OriginAware:      true, // the segment (s, t) is part of the state
		PredecessorAware: true,
		// Face routes legitimately revisit walk states (a face can be
		// re-traversed after the progress point advances), so
		// repetition-based livelock detection must stay off — the same
		// flag randomized algorithms use.
		Randomized: true,
		MinK:       func(int) int { return 0 },
		Bind: func(_ *graph.Graph, _ int) route.Func {
			type key struct{ s, t graph.Vertex }
			walks := make(map[key][]graph.Vertex)
			positions := make(map[key]int)
			return func(s, t, u, _ graph.Vertex) (graph.Vertex, error) {
				kk := key{s, t}
				walk, ok := walks[kk]
				if !ok {
					res, err := FaceRoute(e, s, t)
					if err != nil {
						return graph.NoVertex, err
					}
					if !res.Delivered {
						return graph.NoVertex, ErrNoProgress
					}
					walk = res.Route
					//klocal:allow face routing is deliberately stateful (Θ(log n) bits per message, Section 3); the walk cache is that state
					walks[kk] = walk
					//klocal:allow face routing is deliberately stateful; the walk position is the Θ(log n)-bit message state
					positions[kk] = 0
				}
				i := positions[kk]
				if i >= len(walk)-1 || walk[i] != u {
					// Resynchronize (the simulator may probe states).
					i = -1
					for j, w := range walk[:len(walk)-1] {
						if w == u {
							i = j
							break
						}
					}
					if i < 0 {
						//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
						return graph.NoVertex, fmt.Errorf("georoute: node %d not on the face route", u)
					}
				}
				//klocal:allow face routing is deliberately stateful; advancing the walk position is the point of the comparator
				positions[kk] = i + 1
				return walk[i+1], nil
			}
		},
	}
}
