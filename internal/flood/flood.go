// Package flood implements the flooding strawman the paper's
// introduction dismisses: delivery is easy if every node retransmits to
// all neighbours, but the traffic load is Θ(m) per message and
// termination needs a known diameter bound. The experiment harness uses
// it to quantify the single-path algorithms' advantage in transmissions.
package flood

import (
	"fmt"

	"klocal/internal/graph"
)

// Result describes one flood.
type Result struct {
	// Delivered reports whether t was reached within the TTL.
	Delivered bool
	// Transmissions counts every message copy sent over a link — the
	// paper's "high traffic loads".
	Transmissions int
	// Rounds is the number of synchronous rounds used.
	Rounds int
}

// Flood floods a message from s with the given TTL (hop budget) and
// reports whether t is reached plus the total transmissions. Nodes
// suppress duplicate retransmissions (each node forwards once), which is
// the memoryful variant; without suppression memoryless flooding never
// terminates, exactly the paper's point.
func Flood(g *graph.Graph, s, t graph.Vertex, ttl int) (*Result, error) {
	if !g.HasVertex(s) || !g.HasVertex(t) {
		return nil, fmt.Errorf("flood: unknown endpoint")
	}
	res := &Result{}
	if s == t {
		res.Delivered = true
		return res, nil
	}
	forwarded := map[graph.Vertex]bool{s: true}
	frontier := []graph.Vertex{s}
	for round := 0; round < ttl && len(frontier) > 0; round++ {
		res.Rounds++
		var next []graph.Vertex
		for _, u := range frontier {
			g.EachAdj(u, func(w graph.Vertex) bool {
				res.Transmissions++
				if w == t {
					res.Delivered = true
				}
				if !forwarded[w] {
					forwarded[w] = true
					next = append(next, w)
				}
				return true
			})
		}
		if res.Delivered {
			return res, nil
		}
		frontier = next
	}
	return res, nil
}

// IterativeDeepening runs floods with TTL 1, 2, 4, ... until delivery,
// the standard way to flood without knowing the diameter; it reports the
// accumulated transmissions across all attempts.
func IterativeDeepening(g *graph.Graph, s, t graph.Vertex) (*Result, error) {
	total := &Result{}
	for ttl := 1; ttl <= 2*g.N()+1; ttl *= 2 {
		r, err := Flood(g, s, t, ttl)
		if err != nil {
			return nil, err
		}
		total.Transmissions += r.Transmissions
		total.Rounds += r.Rounds
		if r.Delivered {
			total.Delivered = true
			return total, nil
		}
	}
	return total, nil
}
