package flood

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestFloodDeliversWithinDiameter(t *testing.T) {
	g := gen.Path(10)
	res, err := Flood(g, 0, 9, 9)
	if err != nil || !res.Delivered {
		t.Fatalf("flood failed: %+v err=%v", res, err)
	}
	if res.Rounds != 9 {
		t.Errorf("rounds = %d, want 9", res.Rounds)
	}
}

func TestFloodRespectsTTL(t *testing.T) {
	g := gen.Path(10)
	res, err := Flood(g, 0, 9, 5)
	if err != nil || res.Delivered {
		t.Errorf("TTL 5 must not reach distance 9: %+v err=%v", res, err)
	}
}

func TestFloodSelf(t *testing.T) {
	g := gen.Path(3)
	res, err := Flood(g, 1, 1, 0)
	if err != nil || !res.Delivered || res.Transmissions != 0 {
		t.Errorf("self flood: %+v err=%v", res, err)
	}
}

func TestFloodUnknownEndpoint(t *testing.T) {
	g := gen.Path(3)
	if _, err := Flood(g, 0, 99, 3); err == nil {
		t.Error("expected error")
	}
}

func TestFloodTransmissionsAreThetaM(t *testing.T) {
	// A full flood (TTL beyond the diameter, t unreachable early) costs
	// about one transmission per directed edge.
	g := gen.Cycle(20)
	res, err := Flood(g, 0, 10, 20)
	if err != nil || !res.Delivered {
		t.Fatal("flood should deliver")
	}
	if res.Transmissions < g.M() {
		t.Errorf("transmissions %d suspiciously below m=%d", res.Transmissions, g.M())
	}
	if res.Transmissions > 2*g.M() {
		t.Errorf("transmissions %d above 2m=%d despite suppression", res.Transmissions, 2*g.M())
	}
}

func TestIterativeDeepeningDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(30)
		g := gen.RandomConnected(rng, n, 0.1)
		vs := g.Vertices()
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		res, err := IterativeDeepening(g, s, dst)
		if err != nil || !res.Delivered {
			t.Fatalf("iterative deepening failed %d->%d: %v", s, dst, err)
		}
	}
}

func TestIterativeDeepeningDisconnected(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	res, err := IterativeDeepening(g, 0, 3)
	if err != nil || res.Delivered {
		t.Errorf("disconnected flood: %+v err=%v", res, err)
	}
}

func TestFloodTrafficVersusSinglePath(t *testing.T) {
	// The introduction's point: flooding delivers but costs Θ(m)
	// transmissions per message; any single-path route costs its length.
	rng := rand.New(rand.NewSource(72))
	g := gen.RandomConnected(rng, 40, 0.2)
	res, err := Flood(g, 0, 39, 40)
	if err != nil || !res.Delivered {
		t.Fatal("flood should deliver")
	}
	if res.Transmissions <= g.Dist(0, 39) {
		t.Errorf("flooding (%d transmissions) should cost far more than the %d-hop path",
			res.Transmissions, g.Dist(0, 39))
	}
}
