package netsim

import (
	"errors"
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/route"
	"klocal/internal/sim"
)

func startNetwork(t *testing.T, g *graph.Graph, k int, alg route.Algorithm) *Network {
	t.Helper()
	nw := New(g, k, alg)
	nw.Start()
	t.Cleanup(nw.Stop)
	if err := nw.Discover(); err != nil {
		t.Fatalf("discover: %v", err)
	}
	return nw
}

func TestDiscoveryMatchesOracleNeighbourhoods(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(16)
		g := gen.RandomConnected(rng, n, 0.2)
		k := 1 + rng.Intn(5)
		nw := startNetwork(t, g, k, route.Algorithm1())
		for _, v := range g.Vertices() {
			want := nbhd.Extract(g, v, k).G
			got := nw.View(v)
			if got == nil || !got.Equal(want) {
				t.Fatalf("discovered view at %d (k=%d) differs:\n got %v\nwant %v\n g=%v",
					v, k, got, want, g)
			}
		}
		nw.Stop()
	}
}

func TestSendMatchesCentralizedSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		g := gen.RandomConnected(rng, n, 0.2)
		alg := route.Algorithm1()
		k := alg.MinK(n)
		nw := startNetwork(t, g, k, alg)
		oracle := alg.Bind(g, k)
		vs := g.Vertices()
		for i := 0; i < 6; i++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			routeGot, err := nw.Send(s, dst)
			if err != nil {
				t.Fatalf("send %d->%d: %v (g=%v)", s, dst, err, g)
			}
			want := sim.Run(g, sim.Func(oracle), s, dst,
				sim.Options{DetectLoops: true, PredecessorAware: true})
			if want.Outcome != sim.Delivered {
				t.Fatalf("oracle failed %d->%d: %v", s, dst, want.Outcome)
			}
			if len(routeGot) != len(want.Route) {
				t.Fatalf("distributed route %v differs from centralized %v", routeGot, want.Route)
			}
			for j := range routeGot {
				if routeGot[j] != want.Route[j] {
					t.Fatalf("distributed route %v differs from centralized %v", routeGot, want.Route)
				}
			}
		}
		nw.Stop()
	}
}

func TestSendAllPairsAlgorithm2(t *testing.T) {
	g := gen.Lollipop(9, 4)
	alg := route.Algorithm2()
	nw := startNetwork(t, g, alg.MinK(g.N()), alg)
	for _, s := range g.Vertices() {
		for _, dst := range g.Vertices() {
			if s == dst {
				continue
			}
			r, err := nw.Send(s, dst)
			if err != nil {
				t.Fatalf("send %d->%d: %v", s, dst, err)
			}
			if r[0] != s || r[len(r)-1] != dst {
				t.Fatalf("route endpoints wrong: %v", r)
			}
		}
	}
}

func TestSendToSelf(t *testing.T) {
	g := gen.Path(5)
	nw := startNetwork(t, g, 2, route.Algorithm3())
	r, err := nw.Send(2, 2)
	if err != nil {
		t.Fatalf("self send: %v", err)
	}
	if len(r) != 1 || r[0] != 2 {
		t.Fatalf("self route = %v", r)
	}
}

func TestSendBeforeDiscoverFails(t *testing.T) {
	g := gen.Path(5)
	nw := New(g, 2, route.Algorithm3())
	nw.Start()
	defer nw.Stop()
	if _, err := nw.Send(0, 4); !errors.Is(err, ErrNotDiscovered) {
		t.Errorf("err = %v, want ErrNotDiscovered", err)
	}
}

func TestSendUnknownNode(t *testing.T) {
	g := gen.Path(5)
	nw := startNetwork(t, g, 2, route.Algorithm3())
	if _, err := nw.Send(0, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := nw.Send(99, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestDiscoverBeforeStartFails(t *testing.T) {
	g := gen.Path(3)
	nw := New(g, 1, route.Algorithm3())
	defer nw.Stop()
	if err := nw.Discover(); err == nil {
		t.Error("expected error when discovering before Start")
	}
}

func TestDiscoverIdempotent(t *testing.T) {
	g := gen.Cycle(6)
	nw := startNetwork(t, g, 3, route.Algorithm3())
	if err := nw.Discover(); err != nil {
		t.Errorf("second Discover: %v", err)
	}
}

func TestStopIsIdempotentAndSendAfterStopFails(t *testing.T) {
	g := gen.Path(4)
	nw := New(g, 2, route.Algorithm3())
	nw.Start()
	if err := nw.Discover(); err != nil {
		t.Fatal(err)
	}
	nw.Stop()
	nw.Stop()
	if _, err := nw.Send(0, 3); !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
}

func TestViewUnknownVertex(t *testing.T) {
	g := gen.Path(3)
	nw := startNetwork(t, g, 1, route.Algorithm3())
	if nw.View(42) != nil {
		t.Error("View of unknown vertex must be nil")
	}
}

func TestConcurrentSends(t *testing.T) {
	g := gen.Grid(4, 5)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(g.N()), alg)
	vs := g.Vertices()
	errs := make(chan error, len(vs))
	for i := range vs {
		go func(i int) {
			_, err := nw.Send(vs[i], vs[(i+7)%len(vs)])
			errs <- err
		}(i)
	}
	for range vs {
		if err := <-errs; err != nil {
			t.Errorf("concurrent send: %v", err)
		}
	}
}

func TestAlgorithm3RoutesShortestDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	g := gen.RandomConnected(rng, 18, 0.15)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(18), alg)
	vs := g.Vertices()
	for i := 0; i < 20; i++ {
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		r, err := nw.Send(s, dst)
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		if len(r)-1 != g.Dist(s, dst) {
			t.Errorf("route %d->%d has %d hops, shortest is %d", s, dst, len(r)-1, g.Dist(s, dst))
		}
	}
}

func TestStatsCountDiscoveryAndForwards(t *testing.T) {
	g := gen.Cycle(10)
	alg := route.Algorithm3()
	k := alg.MinK(10)
	nw := New(g, k, alg)
	nw.Start()
	defer nw.Stop()
	if s := nw.Stats(); s.LSATransmissions != 0 || s.DataForwards != 0 {
		t.Fatalf("counters must start at zero: %+v", s)
	}
	if err := nw.Discover(); err != nil {
		t.Fatal(err)
	}
	afterDiscovery := nw.Stats()
	// Each node self-seeds once and forwards each of the origins it
	// relays to both neighbours: at least n, at most n + n·Σdeg.
	if afterDiscovery.LSATransmissions < int64(g.N()) {
		t.Errorf("discovery transmissions %d below n", afterDiscovery.LSATransmissions)
	}
	if max := int64(g.N() + g.N()*2*g.M()); afterDiscovery.LSATransmissions > max {
		t.Errorf("discovery transmissions %d above the flooding bound %d", afterDiscovery.LSATransmissions, max)
	}
	if afterDiscovery.DataForwards != 0 {
		t.Error("no data forwards before Send")
	}
	if _, err := nw.Send(0, 5); err != nil {
		t.Fatal(err)
	}
	if got := nw.Stats().DataForwards; got != 5 {
		t.Errorf("data forwards = %d, want 5", got)
	}
}

func TestDiscoveryCostGrowsWithK(t *testing.T) {
	g := gen.Cycle(16)
	cost := func(k int) int64 {
		nw := New(g, k, route.Algorithm3())
		nw.Start()
		defer nw.Stop()
		if err := nw.Discover(); err != nil {
			t.Fatal(err)
		}
		return nw.Stats().LSATransmissions
	}
	small := cost(2)
	large := cost(8)
	if large <= small {
		t.Errorf("discovery cost should grow with k: k=2 -> %d, k=8 -> %d", small, large)
	}
}
