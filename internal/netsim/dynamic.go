package netsim

import (
	"fmt"
	"sort"

	"klocal/internal/graph"
)

// Topology dynamics. The paper notes that "the preprocessing step need
// not be repeated unless the network topology changes"; these methods
// realize the change-and-rediscover cycle: mutate links, then run
// Rediscover to flood fresh link state and rebuild every node's view and
// routing function. They must not be called concurrently with Send.

// ErrTooManyChanges means a node's link count outgrew the inbox headroom
// reserved at construction; build a fresh Network for larger changes.
var errTooManyChanges = fmt.Errorf("netsim: node degree outgrew the reserved inbox capacity; rebuild the network")

// AddEdge inserts the link {u, v} and invalidates discovery state.
func (nw *Network) AddEdge(u, v graph.Vertex) error {
	if u == v {
		return fmt.Errorf("netsim: self-loop {%d,%d}", u, v)
	}
	nu, ok := nw.nodes[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, u)
	}
	nv, ok := nw.nodes[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if nw.g.HasEdge(u, v) {
		return nil
	}
	n := nw.g.N()
	if n*(nw.g.Deg(u)+1)+8 > cap(nu.inbox) || n*(nw.g.Deg(v)+1)+8 > cap(nv.inbox) {
		return errTooManyChanges
	}
	nw.g = nw.g.Union(graph.FromEdges([]graph.Edge{graph.NewEdge(u, v)}))
	nu.setNeighbors(nw.g.Adj(u))
	nv.setNeighbors(nw.g.Adj(v))
	nw.invalidateDiscovery()
	return nil
}

// RemoveEdge deletes the link {u, v} and invalidates discovery state.
// Removing a cut edge leaves the network disconnected; subsequent sends
// across the cut fail with a routing error or hop-budget exhaustion.
func (nw *Network) RemoveEdge(u, v graph.Vertex) error {
	nu, ok := nw.nodes[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, u)
	}
	nv, ok := nw.nodes[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !nw.g.HasEdge(u, v) {
		return nil
	}
	nw.g = nw.g.WithoutEdges([]graph.Edge{graph.NewEdge(u, v)})
	nu.setNeighbors(nw.g.Adj(u))
	nv.setNeighbors(nw.g.Adj(v))
	nw.invalidateDiscovery()
	return nil
}

// Rediscover reruns the k-hop discovery protocol after topology changes
// and rebuilds every node's routing state. It is a no-op if discovery is
// current.
func (nw *Network) Rediscover() error {
	return nw.Discover()
}

func (nw *Network) invalidateDiscovery() {
	nw.mu.Lock()
	nw.discovered = false
	nw.mu.Unlock()
	for _, nd := range nw.nodes {
		nd.mu.Lock()
		nd.learned = make(map[graph.Vertex][]graph.Vertex)
		nd.seen = make(map[graph.Vertex]bool)
		nd.router = nil
		nd.view = nil
		nd.mu.Unlock()
	}
}

// setNeighbors atomically replaces the node's link list.
func (nd *node) setNeighbors(nbrs []graph.Vertex) {
	sorted := make([]graph.Vertex, len(nbrs))
	copy(sorted, nbrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nd.mu.Lock()
	nd.neighbors = sorted
	nd.mu.Unlock()
}

// neighborsSnapshot returns the current link list under the node lock.
func (nd *node) neighborsSnapshot() []graph.Vertex {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.neighbors
}
