package netsim

import (
	"fmt"
	"sort"

	"klocal/internal/graph"
)

// Topology dynamics. The paper notes that "the preprocessing step need
// not be repeated unless the network topology changes"; these methods
// realize the change-and-rediscover cycle: mutate links, then run
// Rediscover to flood fresh link state and rebuild every node's view and
// routing function. They must not be called concurrently with Send.

// ErrTooManyChanges means a node's link count outgrew the inbox headroom
// reserved at construction; build a fresh Network for larger changes.
// Callers can match it with errors.Is.
var ErrTooManyChanges = fmt.Errorf("netsim: node degree outgrew the reserved inbox capacity; rebuild the network")

// AddEdge inserts the link {u, v} and invalidates discovery state.
func (nw *Network) AddEdge(u, v graph.Vertex) error {
	if u == v {
		return fmt.Errorf("netsim: self-loop {%d,%d}", u, v)
	}
	nu, ok := nw.nodes[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, u)
	}
	nv, ok := nw.nodes[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if nw.g.HasEdge(u, v) {
		return nil
	}
	n := nw.g.N()
	if 4*n*(nw.g.Deg(u)+1)+32 > cap(nu.inbox) || 4*n*(nw.g.Deg(v)+1)+32 > cap(nv.inbox) {
		return ErrTooManyChanges
	}
	nw.g = nw.g.Union(graph.FromEdges([]graph.Edge{graph.NewEdge(u, v)}))
	nu.setNeighbors(nw.g.Adj(u))
	nv.setNeighbors(nw.g.Adj(v))
	nw.InvalidateDiscovery()
	return nil
}

// RemoveEdge deletes the link {u, v} and invalidates discovery state.
// Removing a cut edge leaves the network disconnected; after
// rediscovery, sends across the cut fail with ErrPartitioned.
func (nw *Network) RemoveEdge(u, v graph.Vertex) error {
	nu, ok := nw.nodes[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, u)
	}
	nv, ok := nw.nodes[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	if !nw.g.HasEdge(u, v) {
		return nil
	}
	nw.g = nw.g.WithoutEdges([]graph.Edge{graph.NewEdge(u, v)})
	nu.setNeighbors(nw.g.Adj(u))
	nv.setNeighbors(nw.g.Adj(v))
	nw.InvalidateDiscovery()
	return nil
}

// Rediscover reruns the k-hop discovery protocol after topology changes
// and rebuilds every node's routing state. It is a no-op if discovery is
// current.
func (nw *Network) Rediscover() error {
	nw.mu.Lock()
	if nw.discovered {
		nw.mu.Unlock()
		return nil
	}
	nw.mu.Unlock()
	return nw.Discover()
}

// InvalidateDiscovery marks every node's discovered state stale so the
// next Discover or Rediscover rebuilds it. Topology mutations call it
// automatically; call it manually after Crash or Restart to make the
// surviving nodes re-detect the live topology.
func (nw *Network) InvalidateDiscovery() {
	nw.mu.Lock()
	nw.discovered = false
	nw.mu.Unlock()
	for _, nd := range nw.nodes {
		nd.mu.Lock()
		nd.learned = make(map[graph.Vertex]*lsaRec)
		nd.pending = make(map[graph.Vertex]map[graph.Vertex]*xfer)
		nd.deadNbrs = make(map[graph.Vertex]bool)
		nd.router = nil
		nd.view = nil
		nd.viewComplete = false
		// ownSeq is stable storage: it survives so re-announcements
		// supersede anything still circulating from the previous epoch.
		nd.mu.Unlock()
	}
}

// setNeighbors atomically replaces the node's link list.
func (nd *node) setNeighbors(nbrs []graph.Vertex) {
	sorted := make([]graph.Vertex, len(nbrs))
	copy(sorted, nbrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nd.mu.Lock()
	nd.neighbors = sorted
	nd.mu.Unlock()
}
