package netsim

import (
	"errors"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/route"
)

func TestAddEdgeShortensRoutes(t *testing.T) {
	g := gen.Cycle(12)
	alg := route.Algorithm3()
	k := alg.MinK(12)
	nw := startNetwork(t, g, k, alg)

	before, err := nw.Send(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(before)-1 != 6 {
		t.Fatalf("antipodal route on C12 should be 6 hops, got %d", len(before)-1)
	}

	// Add a chord 0-6 and rediscover: the route collapses to one hop.
	if err := nw.AddEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(0, 6); !errors.Is(err, ErrNotDiscovered) {
		t.Fatalf("send after topology change must demand rediscovery, got %v", err)
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	after, err := nw.Send(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(after)-1 != 1 {
		t.Fatalf("route after adding the chord should be 1 hop, got %v", after)
	}
}

func TestAddEdgeIdempotentAndValidation(t *testing.T) {
	g := gen.Path(6)
	nw := startNetwork(t, g, 3, route.Algorithm3())
	if err := nw.AddEdge(0, 1); err != nil {
		t.Errorf("re-adding an existing edge must be a no-op: %v", err)
	}
	if err := nw.AddEdge(2, 2); err == nil {
		t.Error("self-loop must error")
	}
	if err := nw.AddEdge(0, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown endpoint: %v", err)
	}
	if err := nw.RemoveEdge(0, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown endpoint: %v", err)
	}
	// Adding an existing edge must not invalidate discovery.
	if _, err := nw.Send(0, 5); err != nil {
		t.Errorf("discovery should still be valid: %v", err)
	}
}

func TestRemoveEdgeReroutes(t *testing.T) {
	// A cycle with a chord: removing the chord forces the long way.
	g := gen.Cycle(10).Union(graph.FromEdges([]graph.Edge{graph.NewEdge(0, 5)}))
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(10), alg)
	r, err := nw.Send(0, 5)
	if err != nil || len(r)-1 != 1 {
		t.Fatalf("chord route: %v err=%v", r, err)
	}
	if err := nw.RemoveEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	r, err = nw.Send(0, 5)
	if err != nil || len(r)-1 != 5 {
		t.Fatalf("post-removal route should be 5 hops: %v err=%v", r, err)
	}
}

func TestRemoveEdgeNonexistentIsNoop(t *testing.T) {
	g := gen.Path(5)
	nw := startNetwork(t, g, 2, route.Algorithm3())
	if err := nw.RemoveEdge(0, 4); err != nil {
		t.Errorf("removing an absent edge must be a no-op: %v", err)
	}
	if _, err := nw.Send(0, 4); err != nil {
		t.Errorf("discovery should remain valid: %v", err)
	}
}

func TestRediscoveredViewsMatchOracle(t *testing.T) {
	g := gen.Cycle(10)
	alg := route.Algorithm2()
	k := alg.MinK(10)
	nw := startNetwork(t, g, k, alg)
	if err := nw.AddEdge(2, 7); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	want := g.Union(graph.FromEdges([]graph.Edge{graph.NewEdge(2, 7)}))
	for _, v := range want.Vertices() {
		oracle := nbhd.Extract(want, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(oracle) {
			t.Fatalf("rediscovered view at %d differs from oracle:\n got %v\nwant %v", v, got, oracle)
		}
	}
}

func TestTooManyAddedEdges(t *testing.T) {
	g := gen.Path(8)
	nw := startNetwork(t, g, 3, route.Algorithm3())
	// Node 0 has degree 1 with headroom 2: two added edges fit, the third
	// must be refused.
	if err := nw.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddEdge(0, 4); err == nil {
		t.Error("third added edge at node 0 should exceed the reserved headroom")
	}
}

func TestDisconnectionSurfacesAsError(t *testing.T) {
	g := gen.Path(6)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(6), alg)
	if err := nw.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(0, 5); err == nil {
		t.Error("routing across a cut must fail")
	}
	// Same-side routing still works.
	if _, err := nw.Send(0, 2); err != nil {
		t.Errorf("same-side route failed: %v", err)
	}
}

func TestNodeCrashScenario(t *testing.T) {
	// A "crash" in the static model: all of a node's links are removed,
	// rediscovery runs, and traffic routes around the hole — or fails
	// cleanly toward the dead node.
	g := gen.Grid(3, 4) // crash node 5 (an interior vertex)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(g.N()), alg)
	before, err := nw.Send(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(before)-1 != 2 {
		t.Fatalf("route 4->6 should be 2 hops through 5, got %v", before)
	}
	for _, nb := range g.Adj(5) {
		if err := nw.RemoveEdge(5, nb); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	after, err := nw.Send(4, 6)
	if err != nil {
		t.Fatalf("routing around the crash: %v", err)
	}
	for _, v := range after {
		if v == 5 {
			t.Fatalf("route still visits the crashed node: %v", after)
		}
	}
	if len(after)-1 <= 2 {
		t.Fatalf("detour should be longer than the direct route: %v", after)
	}
	// Traffic TO the dead node fails cleanly.
	if _, err := nw.Send(0, 5); err == nil {
		t.Error("routing to a crashed node must fail")
	}
}
