// Package netsim is a concurrent, message-passing network simulator: one
// goroutine per node, channels as links. It realizes the paper's ad hoc
// network setting operationally — each node starts knowing only its own
// adjacency ("every node knows its own label as well as the labels of its
// neighbours") and *discovers* its k-neighbourhood G_k(u) by running a
// TTL-scoped link-state flooding protocol. Data messages are then routed
// hop by hop using a k-local routing algorithm bound to each node's
// discovered view, never to the global topology.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"klocal/internal/graph"
	"klocal/internal/route"
)

// Errors returned by Network operations.
var (
	// ErrNotDiscovered means Send was called before Discover.
	ErrNotDiscovered = errors.New("netsim: neighbourhood discovery has not run")
	// ErrStopped means the network was already stopped.
	ErrStopped = errors.New("netsim: network is stopped")
	// ErrUnknownNode means an endpoint is not part of the network.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrHopBudget means a data message exceeded its hop budget (a
	// routing loop at the chosen locality).
	ErrHopBudget = errors.New("netsim: hop budget exhausted (routing loop)")
)

// lsa is a link-state announcement: the adjacency of origin, flooded with
// a hop budget so it reaches exactly the nodes within distance k−1.
type lsa struct {
	origin graph.Vertex
	adj    []graph.Vertex
	ttl    int
}

// dataMsg is a routed message. It carries its own trace; the route slice
// is owned by the message (exactly one node holds it at any time).
type dataMsg struct {
	s, t   graph.Vertex
	prev   graph.Vertex
	route  []graph.Vertex
	budget int
	done   chan<- deliverResult
}

type deliverResult struct {
	route []graph.Vertex
	err   error
}

// message is the sum type carried on node inboxes.
type message struct {
	lsa  *lsa
	data *dataMsg
}

// node is one network participant.
type node struct {
	id        graph.Vertex
	neighbors []graph.Vertex // sorted, known a priori
	inbox     chan message

	mu      sync.Mutex
	learned map[graph.Vertex][]graph.Vertex // origin -> adjacency
	seen    map[graph.Vertex]bool           // LSA origins already forwarded
	router  route.Func                      // built after discovery
	view    *graph.Graph
}

// Network is a running simulation. Create with New, then Start, Discover,
// Send any number of times, and Stop.
type Network struct {
	g   *graph.Graph
	k   int
	alg route.Algorithm

	nodes map[graph.Vertex]*node
	stop  chan struct{}
	wg    sync.WaitGroup

	// inflight tracks undelivered protocol messages for quiescence
	// detection during discovery.
	inflight sync.WaitGroup

	lsaTransmissions atomic.Int64
	dataForwards     atomic.Int64

	mu         sync.Mutex
	started    bool
	stopped    bool
	discovered bool
}

// New prepares a network over topology g with locality k and the given
// routing algorithm. Nothing runs until Start.
func New(g *graph.Graph, k int, alg route.Algorithm) *Network {
	nw := &Network{
		g:     g,
		k:     k,
		alg:   alg,
		nodes: make(map[graph.Vertex]*node, g.N()),
		stop:  make(chan struct{}),
	}
	for _, v := range g.Vertices() {
		// Inbox capacity: during discovery a node receives at most one
		// copy of each origin's LSA per incident link (n·deg messages);
		// data messages add at most a handful. The bound keeps senders
		// from ever blocking on a busy receiver, which would deadlock
		// symmetric floods. Two extra links of headroom are reserved for
		// AddEdge.
		capacity := g.N()*(g.Deg(v)+2) + 8
		nw.nodes[v] = &node{
			id:        v,
			neighbors: g.Adj(v),
			inbox:     make(chan message, capacity),
			learned:   make(map[graph.Vertex][]graph.Vertex),
			seen:      make(map[graph.Vertex]bool),
		}
	}
	return nw
}

// Start launches one goroutine per node.
func (nw *Network) Start() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started || nw.stopped {
		return
	}
	nw.started = true
	for _, nd := range nw.nodes {
		nw.wg.Add(1)
		go nw.run(nd)
	}
}

// Stop shuts every node down and waits for the goroutines to exit.
func (nw *Network) Stop() {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return
	}
	nw.stopped = true
	started := nw.started
	nw.mu.Unlock()
	close(nw.stop)
	if started {
		nw.wg.Wait()
	}
}

// run is the node main loop.
func (nw *Network) run(nd *node) {
	defer nw.wg.Done()
	for {
		select {
		case <-nw.stop:
			return
		case msg := <-nd.inbox:
			switch {
			case msg.lsa != nil:
				nw.handleLSA(nd, msg.lsa)
				nw.inflight.Done()
			case msg.data != nil:
				nw.handleData(nd, msg.data)
			}
		}
	}
}

// send delivers a message to the target's inbox unless the network is
// stopping.
func (nw *Network) send(to graph.Vertex, msg message) {
	select {
	case nw.nodes[to].inbox <- msg:
	case <-nw.stop:
		if msg.lsa != nil {
			nw.inflight.Done()
		}
	}
}

func (nw *Network) sendLSA(to graph.Vertex, l *lsa) {
	nw.inflight.Add(1)
	nw.lsaTransmissions.Add(1)
	nw.send(to, message{lsa: l})
}

// handleLSA records a link-state announcement and forwards it while its
// TTL lasts. Each node forwards each origin's announcement at most once
// (standard flooding suppression).
func (nw *Network) handleLSA(nd *node, l *lsa) {
	nd.mu.Lock()
	if _, known := nd.learned[l.origin]; !known {
		adj := make([]graph.Vertex, len(l.adj))
		copy(adj, l.adj)
		nd.learned[l.origin] = adj
	}
	forward := !nd.seen[l.origin] && l.ttl > 0
	nd.seen[l.origin] = true
	nd.mu.Unlock()
	if !forward {
		return
	}
	next := &lsa{origin: l.origin, adj: l.adj, ttl: l.ttl - 1}
	for _, nb := range nd.neighborsSnapshot() {
		nw.sendLSA(nb, next)
	}
}

// Discover floods every node's adjacency with TTL k−1, so each node
// learns the adjacency of every node within distance k−1 — exactly the
// edge set of G_k(u) — then builds its local view and routing function.
// It blocks until the flood quiesces. Discover is idempotent.
func (nw *Network) Discover() error {
	nw.mu.Lock()
	if !nw.started {
		nw.mu.Unlock()
		return errors.New("netsim: network not started")
	}
	if nw.stopped {
		nw.mu.Unlock()
		return ErrStopped
	}
	if nw.discovered {
		nw.mu.Unlock()
		return nil
	}
	nw.mu.Unlock()

	for _, nd := range nw.nodes {
		// A node's own adjacency counts as an announcement with full TTL;
		// seeding it through its own inbox keeps all protocol logic in
		// one place.
		self := &lsa{origin: nd.id, adj: nd.neighborsSnapshot(), ttl: nw.k - 1}
		nw.sendLSA(nd.id, self)
	}
	nw.inflight.Wait()

	for _, nd := range nw.nodes {
		nd.mu.Lock()
		nd.view = buildView(nd, nw.k)
		nd.router = nw.alg.Bind(nd.view, nw.k)
		nd.mu.Unlock()
	}
	nw.mu.Lock()
	nw.discovered = true
	nw.mu.Unlock()
	return nil
}

// buildView assembles the node's discovered k-neighbourhood from the
// learned adjacencies: the union of announced edges, trimmed to paths of
// length at most k rooted at the node.
func buildView(nd *node, k int) *graph.Graph {
	b := graph.NewBuilder()
	b.AddVertex(nd.id)
	for origin, adj := range nd.learned {
		for _, w := range adj {
			b.AddEdge(origin, w)
		}
	}
	full := b.Build()
	// The union already contains exactly G_k(u)'s edges when the flood
	// TTL is k−1, but trimming keeps the invariant independent of the
	// seeding details.
	trimmed := graph.NewBuilder()
	trimmed.AddVertex(nd.id)
	dist := full.BFSBounded(nd.id, k)
	for v, dv := range dist {
		if dv >= k {
			continue
		}
		full.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				trimmed.AddEdge(v, w)
			}
			return true
		})
	}
	return trimmed.Build()
}

// View returns the discovered k-neighbourhood of v (nil before
// discovery). Intended for tests and inspection.
func (nw *Network) View(v graph.Vertex) *graph.Graph {
	nd, ok := nw.nodes[v]
	if !ok {
		return nil
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.view
}

// handleData makes one forwarding decision and passes the message on.
func (nw *Network) handleData(nd *node, m *dataMsg) {
	if nd.id == m.t {
		m.done <- deliverResult{route: m.route}
		return
	}
	if m.budget <= 0 {
		m.done <- deliverResult{route: m.route, err: ErrHopBudget}
		return
	}
	nd.mu.Lock()
	router := nd.router
	nd.mu.Unlock()
	if router == nil {
		m.done <- deliverResult{route: m.route, err: ErrNotDiscovered}
		return
	}
	next, err := router(m.s, m.t, nd.id, m.prev)
	if err != nil {
		m.done <- deliverResult{route: m.route, err: fmt.Errorf("at node %d: %w", nd.id, err)}
		return
	}
	legal := false
	for _, nb := range nd.neighborsSnapshot() {
		if nb == next {
			legal = true
			break
		}
	}
	if !legal {
		m.done <- deliverResult{route: m.route, err: fmt.Errorf("netsim: node %d chose non-neighbour %d", nd.id, next)}
		return
	}
	m.prev = nd.id
	m.route = append(m.route, next)
	m.budget--
	nw.dataForwards.Add(1)
	nw.send(next, message{data: m})
}

// Send routes one message from s to t through the running network and
// returns the traversed route (s first, t last). The hop budget is
// 4·n·m — far beyond any legal deterministic walk — so loops surface as
// ErrHopBudget.
func (nw *Network) Send(s, t graph.Vertex) ([]graph.Vertex, error) {
	nw.mu.Lock()
	switch {
	case nw.stopped:
		nw.mu.Unlock()
		return nil, ErrStopped
	case !nw.discovered:
		nw.mu.Unlock()
		return nil, ErrNotDiscovered
	}
	nw.mu.Unlock()
	if _, ok := nw.nodes[s]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, s)
	}
	if _, ok := nw.nodes[t]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, t)
	}
	done := make(chan deliverResult, 1)
	msg := &dataMsg{
		s:      s,
		t:      t,
		prev:   graph.NoVertex,
		route:  []graph.Vertex{s},
		budget: 4 * (nw.g.N() + 1) * (nw.g.M() + 1),
		done:   done,
	}
	nw.send(s, message{data: msg})
	select {
	case res := <-done:
		return res.route, res.err
	case <-nw.stop:
		return nil, ErrStopped
	}
}

// Stats reports the protocol costs accumulated so far: link-state
// transmissions (the price of k-hop discovery, growing with k and the
// density — the trade-off behind the paper's "each node can periodically
// acquire and update information about its neighbourhood") and data
// forwards.
type Stats struct {
	LSATransmissions int64
	DataForwards     int64
}

// Stats returns a snapshot of the protocol counters.
func (nw *Network) Stats() Stats {
	return Stats{
		LSATransmissions: nw.lsaTransmissions.Load(),
		DataForwards:     nw.dataForwards.Load(),
	}
}
