// Package netsim is a concurrent, message-passing network simulator: one
// goroutine per node, channels as links. It realizes the paper's ad hoc
// network setting operationally — each node starts knowing only its own
// adjacency ("every node knows its own label as well as the labels of its
// neighbours") and *discovers* its k-neighbourhood G_k(u) by running a
// TTL-scoped link-state flooding protocol. Data messages are then routed
// hop by hop using a k-local routing algorithm bound to each node's
// discovered view, never to the global topology.
//
// The link layer is unreliable: a fault.Injector may drop, duplicate, or
// delay any transmission and crash any node. Discovery tolerates this
// with sequence-numbered announcements, per-neighbour acknowledgments,
// bounded retransmission with exponential backoff, and round-based
// settling in place of in-flight counting (which deadlocks the moment a
// single message is lost). Neighbours that stop acknowledging are
// declared dead, their announcements withdrawn via tombstones, so every
// surviving node's view converges to G_k(u) of the live topology.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"klocal/internal/fault"
	"klocal/internal/graph"
	"klocal/internal/route"
)

// Errors returned by Network operations.
var (
	// ErrNotDiscovered means Send was called before Discover.
	ErrNotDiscovered = errors.New("netsim: neighbourhood discovery has not run")
	// ErrStopped means the network was already stopped.
	ErrStopped = errors.New("netsim: network is stopped")
	// ErrUnknownNode means an endpoint is not part of the network.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrHopBudget means a data message exceeded its hop budget (a
	// routing loop at the chosen locality).
	ErrHopBudget = errors.New("netsim: hop budget exhausted (routing loop)")
	// ErrPartitioned means the destination is provably unreachable: it
	// lies outside a node's complete k-neighbourhood, so no path exists
	// in the live topology.
	ErrPartitioned = errors.New("netsim: destination unreachable (network partitioned)")
	// ErrNodeDown means a crashed node blocks the route: the next hop
	// stopped acknowledging, or an endpoint is dead.
	ErrNodeDown = errors.New("netsim: node is down")
	// ErrLinkDown means a link swallowed every retransmission attempt
	// even though the peer is nominally alive.
	ErrLinkDown = errors.New("netsim: link failed after retransmission budget")
	// ErrDiscoveryStalled means discovery failed to settle within its
	// round budget (pathological fault schedule).
	ErrDiscoveryStalled = errors.New("netsim: discovery did not settle within the round budget")
)

// lsa is a link-state announcement: the adjacency of origin at sequence
// seq, flooded with a hop budget so it reaches exactly the nodes within
// distance k−1. A tombstone (tomb=true, empty adj) withdraws a crashed
// origin's announcement.
type lsa struct {
	origin graph.Vertex
	seq    uint64
	adj    []graph.Vertex
	ttl    int
	tomb   bool
}

// lsaKey folds an announcement's identity into the fault injector's
// opaque message key.
func lsaKey(l *lsa) uint64 {
	k := uint64(l.origin)<<33 | (l.seq&0xffffffff)<<1
	if l.tomb {
		k |= 1
	}
	return k
}

// ackMsg acknowledges link-level receipt of one announcement version.
type ackMsg struct {
	origin graph.Vertex
	seq    uint64
	tomb   bool
}

// dataMsg is a routed message. It carries its own trace; the struct is
// owned by exactly one node at any time.
type dataMsg struct {
	id      uint64
	s, t    graph.Vertex
	prev    graph.Vertex
	route   []graph.Vertex
	budget  int
	retries int
	events  []fault.Event
	done    chan<- deliverResult
}

type deliverResult struct {
	route   []graph.Vertex
	retries int
	events  []fault.Event
	err     error
}

// message is the sum type carried on node inboxes. from is the
// link-level sender; attempt is the transmission attempt that delivered
// it (acknowledgments inherit it so every re-ack gets an independent
// fault roll); delay is the residual fault-injected reorder.
type message struct {
	from    graph.Vertex
	lsa     *lsa
	ack     *ackMsg
	data    *dataMsg
	attempt int
	delay   int
}

// lsaRec is a node's stored copy of an origin's announcement: version,
// adjacency, the residual ttl it arrived with (kept so the record can be
// re-offered to a resurrected neighbour), and whether it is a tombstone.
type lsaRec struct {
	seq  uint64
	adj  []graph.Vertex
	ttl  int
	tomb bool
}

// xfer is one reliable transfer awaiting acknowledgment: the forwarded
// announcement, how many times it has been transmitted, and the round at
// which the next retransmission is due.
type xfer struct {
	l        *lsa
	attempts int
	due      int
}

// node is one network participant.
type node struct {
	id    graph.Vertex
	inbox chan message

	mu           sync.Mutex
	neighbors    []graph.Vertex                          // sorted, known a priori
	ownSeq       uint64                                  // own announcement version (stable storage)
	learned      map[graph.Vertex]*lsaRec                // origin -> latest record
	pending      map[graph.Vertex]map[graph.Vertex]*xfer // neighbour -> origin -> unacked transfer
	deadNbrs     map[graph.Vertex]bool                   // neighbours declared dead
	router       route.Func                              // built after discovery
	view         *graph.Graph
	viewComplete bool // view contains this node's whole component
}

// quiescer tracks undelivered messages. Unlike a WaitGroup it tolerates
// drops (a dropped message is simply never added) and wakes waiters on
// shutdown.
type quiescer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	closed bool
}

func newQuiescer() *quiescer {
	q := &quiescer{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *quiescer) add(d int) {
	q.mu.Lock()
	q.n += d
	if q.n <= 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// wait blocks until no messages are in flight or the network shuts down.
func (q *quiescer) wait() {
	q.mu.Lock()
	for q.n > 0 && !q.closed {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

func (q *quiescer) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Network is a running simulation. Create with New (perfect links) or
// NewFaulty (seeded fault plan), then Start, Discover, Send any number
// of times, and Stop.
type Network struct {
	g    *graph.Graph
	k    int
	alg  route.Algorithm
	plan fault.Plan
	inj  fault.Injector

	nodes map[graph.Vertex]*node
	order []graph.Vertex // sorted vertices, for deterministic passes
	stop  chan struct{}
	wg    sync.WaitGroup

	// pending tracks enqueued-but-unprocessed messages for loss-tolerant
	// quiescence detection.
	pending *quiescer
	// round is the logical discovery round, advanced by the settling
	// loop; fault schedules (blackouts, crash windows) key off it.
	round atomic.Int64
	msgID atomic.Uint64

	liveMu  sync.RWMutex
	dynDown map[graph.Vertex]bool // nodes crashed via the Crash API

	lsaTransmissions   atomic.Int64
	lsaRetransmissions atomic.Int64
	ackTransmissions   atomic.Int64
	dataForwards       atomic.Int64
	dataRetries        atomic.Int64
	dropped            atomic.Int64
	duplicated         atomic.Int64
	delayed            atomic.Int64
	deadDeclared       atomic.Int64
	discoveryRounds    atomic.Int64

	mu         sync.Mutex
	started    bool
	stopped    bool
	discovered bool
}

// New prepares a network over topology g with locality k, the given
// routing algorithm, and perfect links. Nothing runs until Start.
func New(g *graph.Graph, k int, alg route.Algorithm) *Network {
	return NewFaulty(g, k, alg, fault.Plan{})
}

// NewFaulty prepares a network whose link layer and node liveness follow
// the given fault plan. A zero plan behaves exactly like New.
func NewFaulty(g *graph.Graph, k int, alg route.Algorithm, plan fault.Plan) *Network {
	return NewWithInjector(g, k, alg, plan, fault.Compile(plan))
}

// NewWithInjector prepares a network driven by a custom fault injector;
// plan still supplies the retransmission tuning. Intended for tests that
// need surgical fault placement (e.g. dropping one specific LSA).
func NewWithInjector(g *graph.Graph, k int, alg route.Algorithm, plan fault.Plan, inj fault.Injector) *Network {
	nw := &Network{
		g:       g,
		k:       k,
		alg:     alg,
		plan:    plan,
		inj:     inj,
		nodes:   make(map[graph.Vertex]*node, g.N()),
		stop:    make(chan struct{}),
		pending: newQuiescer(),
		dynDown: make(map[graph.Vertex]bool),
	}
	nw.order = append(nw.order, g.Vertices()...)
	sort.Slice(nw.order, func(i, j int) bool { return nw.order[i] < nw.order[j] })
	for _, v := range g.Vertices() {
		// Inbox capacity: during one discovery round a node receives at
		// most one copy of each origin's LSA per incident link plus the
		// matching acknowledgments; duplication at most doubles that.
		// The bound keeps senders from ever blocking on a busy receiver,
		// which would deadlock symmetric floods. Headroom is reserved
		// for AddEdge.
		capacity := 4*g.N()*(g.Deg(v)+2) + 32
		nw.nodes[v] = &node{
			id:        v,
			neighbors: g.Adj(v),
			inbox:     make(chan message, capacity),
			learned:   make(map[graph.Vertex]*lsaRec),
			pending:   make(map[graph.Vertex]map[graph.Vertex]*xfer),
			deadNbrs:  make(map[graph.Vertex]bool),
		}
	}
	return nw
}

// Start launches one goroutine per node.
func (nw *Network) Start() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started || nw.stopped {
		return
	}
	nw.started = true
	for _, nd := range nw.nodes {
		nw.wg.Add(1)
		go nw.run(nd)
	}
}

// Stop shuts every node down and waits for the goroutines to exit.
func (nw *Network) Stop() {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return
	}
	nw.stopped = true
	started := nw.started
	nw.mu.Unlock()
	close(nw.stop)
	nw.pending.close()
	if started {
		nw.wg.Wait()
	}
}

func (nw *Network) isStopped() bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.stopped
}

// isDown reports whether v is crashed at the given round, by plan or by
// the Crash API.
func (nw *Network) isDown(v graph.Vertex, round int) bool {
	nw.liveMu.RLock()
	dyn := nw.dynDown[v]
	nw.liveMu.RUnlock()
	return dyn || nw.inj.Down(v, round)
}

// Crash takes node v down immediately: it stops processing and the link
// layer drops traffic addressed to it. Discovery state is left as-is, so
// routing continues on stale views until discovery is invalidated and
// rerun — exactly the degradation window the fault experiments measure.
func (nw *Network) Crash(v graph.Vertex) error {
	if _, ok := nw.nodes[v]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	nw.liveMu.Lock()
	nw.dynDown[v] = true
	nw.liveMu.Unlock()
	return nil
}

// Restart brings a node crashed via Crash back up. Its stable storage
// (sequence numbers, learned records) is intact; rerun discovery to
// reintegrate it into routing.
func (nw *Network) Restart(v graph.Vertex) error {
	if _, ok := nw.nodes[v]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	nw.liveMu.Lock()
	delete(nw.dynDown, v)
	nw.liveMu.Unlock()
	return nil
}

// run is the node main loop.
func (nw *Network) run(nd *node) {
	defer nw.wg.Done()
	for {
		select {
		case <-nw.stop:
			return
		case msg := <-nd.inbox:
			if msg.delay > 0 {
				// Fault-injected reorder: put the message back behind
				// whatever else is queued; if the inbox is momentarily
				// full, deliver now rather than block on ourselves.
				msg.delay--
				select {
				case nd.inbox <- msg:
				default:
					nw.dispatch(nd, msg)
				}
				continue
			}
			nw.dispatch(nd, msg)
		}
	}
}

// dispatch handles one delivered message and retires it from the
// quiescence count.
func (nw *Network) dispatch(nd *node, msg message) {
	if nw.isDown(nd.id, int(nw.round.Load())) {
		// A crashed node silently eats its traffic. Data messages must
		// still resolve their waiting sender.
		if msg.data != nil {
			msg.data.done <- deliverResult{
				route:   msg.data.route,
				retries: msg.data.retries,
				events:  msg.data.events,
				err:     fmt.Errorf("netsim: node %d crashed while holding the message: %w", nd.id, ErrNodeDown),
			}
		}
		nw.pending.add(-1)
		return
	}
	switch {
	case msg.lsa != nil:
		nw.handleLSA(nd, msg.from, msg.lsa, msg.attempt)
	case msg.ack != nil:
		nw.handleAck(nd, msg.from, msg.ack)
	case msg.data != nil:
		nw.handleData(nd, msg.data)
	}
	nw.pending.add(-1)
}

// enqueue places a message on the target inbox, keeping the quiescence
// count consistent even when the network is shutting down.
func (nw *Network) enqueue(to graph.Vertex, msg message) {
	nw.pending.add(1)
	select {
	case nw.nodes[to].inbox <- msg:
	case <-nw.stop:
		nw.pending.add(-1)
	}
}

// transmit pushes one protocol message across the link from→to through
// the fault layer. It reports whether any copy was enqueued, and the
// injector's ruling.
func (nw *Network) transmit(from, to graph.Vertex, msg message, class fault.Class, key uint64, attempt int) (bool, fault.Decision) {
	round := int(nw.round.Load())
	if nw.isDown(to, round) {
		nw.dropped.Add(1)
		return false, fault.Decision{Drop: true}
	}
	d := nw.inj.Deliver(from, to, class, key, attempt, round)
	if d.Drop {
		nw.dropped.Add(1)
		return false, d
	}
	msg.attempt = attempt
	if d.Delay > 0 {
		nw.delayed.Add(1)
		msg.delay = d.Delay
	}
	copies := 1
	if d.Duplicate && class != fault.ClassData {
		copies = 2
		nw.duplicated.Add(1)
	}
	for i := 0; i < copies; i++ {
		nw.enqueue(to, msg)
	}
	return true, d
}

// liveNbrsLocked returns the node's neighbours minus the ones it has
// declared dead. Caller holds nd.mu.
func liveNbrsLocked(nd *node) []graph.Vertex {
	if len(nd.deadNbrs) == 0 {
		return nd.neighbors
	}
	live := make([]graph.Vertex, 0, len(nd.neighbors))
	for _, nb := range nd.neighbors {
		if !nd.deadNbrs[nb] {
			live = append(live, nb)
		}
	}
	return live
}

// sendLSA registers a reliable transfer of l to neighbour `to` and
// transmits the first attempt.
func (nw *Network) sendLSA(nd *node, to graph.Vertex, l *lsa) {
	nd.mu.Lock()
	m := nd.pending[to]
	if m == nil {
		m = make(map[graph.Vertex]*xfer)
		nd.pending[to] = m
	}
	m[l.origin] = &xfer{l: l, attempts: 1, due: int(nw.round.Load()) + nw.plan.Backoff(1)}
	nd.mu.Unlock()
	nw.lsaTransmissions.Add(1)
	nw.transmit(nd.id, to, message{from: nd.id, lsa: l}, fault.ClassLSA, lsaKey(l), 1)
}

// handleLSA acknowledges, records, and forwards a link-state
// announcement. Each version of each origin's announcement is forwarded
// at most once (flooding suppression by sequence number).
func (nw *Network) handleLSA(nd *node, from graph.Vertex, l *lsa, attempt int) {
	if from != nd.id {
		// Link-level acknowledgment. Acks are not themselves acked: a
		// lost ack just provokes a retransmission, which is re-acked —
		// with the retransmission's attempt number, so each re-ack rolls
		// independent fault dice.
		nw.ackTransmissions.Add(1)
		a := &ackMsg{origin: l.origin, seq: l.seq, tomb: l.tomb}
		nw.transmit(nd.id, from, message{from: nd.id, ack: a}, fault.ClassAck, lsaKey(l), attempt)
	}
	if l.tomb && l.origin == nd.id && from != nd.id {
		// Our own obituary: someone exhausted its retransmissions to us
		// (we were down, or a blackout ate the link). Refute it with a
		// fresh, higher-sequence announcement — but only once per
		// obituary version, or dueling floods would never settle.
		nd.mu.Lock()
		refute := l.seq >= nd.ownSeq
		nd.mu.Unlock()
		if refute {
			nw.reOriginate(nd, nw.k)
		}
		return
	}
	resurrect := graph.NoVertex
	nd.mu.Lock()
	if from != nd.id && nd.deadNbrs[from] {
		delete(nd.deadNbrs, from)
		resurrect = from
	}
	rec := nd.learned[l.origin]
	// A same-version copy with a higher TTL is also an upgrade: under
	// loss, the shortest-path copy can lag behind a longer-path copy
	// (its transmission dropped and rescheduled by backoff), and if the
	// low-TTL copy silenced forwarding permanently the flood would stop
	// short of the nodes the origin is entitled to reach. Re-forwarding
	// on TTL upgrades restores shortest-path reach; TTLs rise
	// monotonically, so each node forwards each version at most k times.
	newer := rec == nil || l.seq > rec.seq ||
		(l.seq == rec.seq && l.tomb && !rec.tomb) ||
		(l.seq == rec.seq && l.tomb == rec.tomb && l.ttl > rec.ttl)
	var fwd *lsa
	if newer {
		adj := make([]graph.Vertex, len(l.adj))
		copy(adj, l.adj)
		nd.learned[l.origin] = &lsaRec{seq: l.seq, adj: adj, ttl: l.ttl, tomb: l.tomb}
		if l.ttl > 0 {
			fwd = &lsa{origin: l.origin, seq: l.seq, adj: l.adj, ttl: l.ttl - 1, tomb: l.tomb}
		}
	}
	var nbrs []graph.Vertex
	if fwd != nil {
		nbrs = append(nbrs, liveNbrsLocked(nd)...)
	}
	nd.mu.Unlock()
	if resurrect != graph.NoVertex {
		nw.repairNeighbor(nd, resurrect)
	}
	for _, nb := range nbrs {
		nw.sendLSA(nd, nb, fwd)
	}
}

// handleAck retires the matching reliable transfer.
func (nw *Network) handleAck(nd *node, from graph.Vertex, a *ackMsg) {
	resurrect := graph.NoVertex
	nd.mu.Lock()
	if nd.deadNbrs[from] {
		delete(nd.deadNbrs, from)
		resurrect = from
	}
	if m := nd.pending[from]; m != nil {
		if x := m[a.origin]; x != nil {
			if a.seq > x.l.seq || (a.seq == x.l.seq && (a.tomb == x.l.tomb || a.tomb)) {
				delete(m, a.origin)
			}
		}
	}
	nd.mu.Unlock()
	if resurrect != graph.NoVertex {
		nw.repairNeighbor(nd, resurrect)
	}
}

// repairNeighbor reintegrates a neighbour that was declared dead but has
// come back: restore it to our announcement, and re-offer every record
// we have forwarded so it recovers floods it missed while down.
func (nw *Network) repairNeighbor(nd *node, v graph.Vertex) {
	nw.reOriginate(nd, nw.k)
	nd.mu.Lock()
	var repairs []*lsa
	for origin, rec := range nd.learned {
		if origin == nd.id || origin == v || rec.tomb || rec.ttl <= 0 {
			continue
		}
		repairs = append(repairs, &lsa{origin: origin, seq: rec.seq, adj: rec.adj, ttl: rec.ttl - 1})
	}
	nd.mu.Unlock()
	for _, l := range repairs {
		nw.sendLSA(nd, v, l)
	}
}

// reOriginate floods a fresh announcement of this node's live adjacency
// with the given TTL. It doubles as the discovery seed (ttl k−1, the
// paper's flooding radius; routing it through the node's own inbox keeps
// all protocol logic in one place). Fault-path re-originations use ttl k
// instead: a tombstone flooded by a neighbour of the condemned node with
// TTL k−1 can reach nodes at distance k from it, so the announcement that
// refutes or supersedes the obituary must reach at least as far. The
// extra hop is harmless — view construction trims at distance k anyway.
func (nw *Network) reOriginate(nd *node, ttl int) {
	nd.mu.Lock()
	nd.ownSeq++
	l := &lsa{origin: nd.id, seq: nd.ownSeq, adj: liveNbrsLocked(nd), ttl: ttl}
	nd.mu.Unlock()
	nw.lsaTransmissions.Add(1)
	nw.enqueue(nd.id, message{from: nd.id, lsa: l})
}

// declareDead marks a neighbour that exhausted its retransmission budget
// as crashed: withdraw it from our announcement and flood a tombstone so
// every node that learned of it forgets it.
func (nw *Network) declareDead(nd *node, v graph.Vertex) {
	nd.mu.Lock()
	if nd.deadNbrs[v] {
		nd.mu.Unlock()
		return
	}
	nd.deadNbrs[v] = true
	delete(nd.pending, v)
	var tombSeq uint64
	if rec := nd.learned[v]; rec != nil {
		tombSeq = rec.seq
	}
	nd.mu.Unlock()
	nw.deadDeclared.Add(1)
	tomb := &lsa{origin: v, seq: tombSeq, ttl: nw.k - 1, tomb: true}
	nw.lsaTransmissions.Add(1)
	nw.enqueue(nd.id, message{from: nd.id, lsa: tomb})
	nw.reOriginate(nd, nw.k)
	// Probe the condemned neighbour with its own obituary. A truly dead
	// node ignores it (the probe transfer exhausts quietly); a live one
	// that was condemned by bad luck refutes it with a fresh
	// announcement, which resurrects it here and heals the false
	// positive everywhere.
	nw.sendLSA(nd, v, tomb)
}

// retransmitPass, run only while the network is quiescent, retries every
// transfer whose backoff expired and declares neighbours dead once their
// budget is spent. It reports whether it generated any traffic.
func (nw *Network) retransmitPass(round int) bool {
	active := false
	maxAttempts := nw.plan.Attempts()
	for _, v := range nw.order {
		nd := nw.nodes[v]
		if nw.isDown(v, round) {
			continue
		}
		type retry struct {
			to      graph.Vertex
			l       *lsa
			attempt int
		}
		var retries []retry
		var deaths []graph.Vertex
		nd.mu.Lock()
		for to, m := range nd.pending {
			dead := false
			for origin, x := range m {
				if x.due > round {
					continue
				}
				x.attempts++
				if x.attempts > maxAttempts {
					if nd.deadNbrs[to] {
						// A probe to an already-condemned neighbour
						// exhausted: give up quietly.
						delete(m, origin)
						continue
					}
					dead = true
					break
				}
				x.due = round + nw.plan.Backoff(x.attempts)
				retries = append(retries, retry{to: to, l: x.l, attempt: x.attempts})
			}
			if dead {
				deaths = append(deaths, to)
			}
		}
		nd.mu.Unlock()
		for _, r := range retries {
			nw.lsaRetransmissions.Add(1)
			nw.transmit(nd.id, r.to, message{from: nd.id, lsa: r.l}, fault.ClassLSA, lsaKey(r.l), r.attempt)
			active = true
		}
		for _, to := range deaths {
			nw.declareDead(nd, to)
			active = true
		}
	}
	return active
}

// anyPendingXfers reports whether any live node still awaits an
// acknowledgment.
func (nw *Network) anyPendingXfers(round int) bool {
	for _, v := range nw.order {
		nd := nw.nodes[v]
		if nw.isDown(v, round) {
			continue
		}
		nd.mu.Lock()
		n := 0
		for _, m := range nd.pending {
			n += len(m)
		}
		nd.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// applyRestarts re-announces nodes whose scheduled crash window ends at
// this round. Their stable storage is intact; the fresh announcement
// (with a higher sequence number) overrides any tombstone flooded while
// they were down.
func (nw *Network) applyRestarts(round int) {
	for _, c := range nw.plan.Crashes {
		if c.To == round && !nw.isDown(c.Node, round) {
			if nd, ok := nw.nodes[c.Node]; ok {
				nw.reOriginate(nd, nw.k)
			}
		}
	}
}

// Discover floods every node's adjacency with TTL k−1, so each node
// learns the adjacency of every node within distance k−1 — exactly the
// edge set of G_k(u) — then builds its local view and routing function.
//
// Settling is round-based and loss-tolerant: the coordinator waits for
// the network to go idle, retries transfers whose acknowledgment never
// arrived (with exponential backoff), and finishes only when no transfer
// is outstanding and no fault-schedule transition lies ahead. Discover
// is idempotent. It blocks until the flood settles.
func (nw *Network) Discover() error {
	nw.mu.Lock()
	if !nw.started {
		nw.mu.Unlock()
		return errors.New("netsim: network not started")
	}
	if nw.stopped {
		nw.mu.Unlock()
		return ErrStopped
	}
	if nw.discovered {
		nw.mu.Unlock()
		return nil
	}
	nw.mu.Unlock()

	// Round budget: the full retry schedule for one transfer, the fault
	// schedule horizon, and slack for death/tombstone cascades.
	maxAttempts := nw.plan.Attempts()
	schedule := 0
	for a := 1; a <= maxAttempts; a++ {
		schedule += nw.plan.Backoff(a)
	}
	maxRounds := 4*(schedule+nw.plan.LastScheduledRound()) + 16

	nw.round.Store(0)
	for _, v := range nw.order {
		if nw.isDown(v, 0) {
			continue
		}
		nw.reOriginate(nw.nodes[v], nw.k-1)
	}

	round := 0
	for {
		nw.pending.wait()
		if nw.isStopped() {
			return ErrStopped
		}
		active := nw.retransmitPass(round)
		if !active && !nw.anyPendingXfers(round) && round >= nw.plan.LastScheduledRound() {
			break
		}
		round++
		if round > maxRounds {
			return fmt.Errorf("%w (after %d rounds)", ErrDiscoveryStalled, round)
		}
		nw.round.Store(int64(round))
		nw.applyRestarts(round)
	}
	nw.discoveryRounds.Store(int64(round))

	finalRound := round
	for _, v := range nw.order {
		nd := nw.nodes[v]
		if nw.isDown(v, finalRound) {
			continue
		}
		nd.mu.Lock()
		nd.view, nd.viewComplete = buildView(nd, nw.k)
		nd.router = nw.alg.Bind(nd.view, nw.k)
		nd.mu.Unlock()
	}
	nw.mu.Lock()
	nw.discovered = true
	nw.mu.Unlock()
	return nil
}

// buildView assembles the node's discovered k-neighbourhood from the
// learned adjacencies: the union of announced edges — tombstoned origins
// and edges into them excluded — trimmed to paths of length at most k
// rooted at the node. The second result reports whether the view is
// complete: no vertex sits on the distance-k horizon, so the node's
// whole component is inside the view and absence of a destination proves
// a partition.
func buildView(nd *node, k int) (*graph.Graph, bool) {
	dead := make(map[graph.Vertex]bool)
	for origin, rec := range nd.learned {
		if rec.tomb {
			dead[origin] = true
		}
	}
	b := graph.NewBuilder()
	b.AddVertex(nd.id)
	for origin, rec := range nd.learned {
		if rec.tomb {
			continue
		}
		for _, w := range rec.adj {
			if dead[w] {
				continue
			}
			b.AddEdge(origin, w)
		}
	}
	full := b.Build()
	// The union already contains exactly G_k(u)'s edges when the flood
	// TTL is k−1, but trimming keeps the invariant independent of the
	// seeding details.
	trimmed := graph.NewBuilder()
	trimmed.AddVertex(nd.id)
	dist := full.BFSBounded(nd.id, k)
	complete := true
	for v, dv := range dist {
		if dv >= k {
			complete = false
			continue
		}
		full.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				trimmed.AddEdge(v, w)
			}
			return true
		})
	}
	return trimmed.Build(), complete
}

// View returns the discovered k-neighbourhood of v (nil before
// discovery). Intended for tests and inspection.
func (nw *Network) View(v graph.Vertex) *graph.Graph {
	nd, ok := nw.nodes[v]
	if !ok {
		return nil
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.view
}

// neighborsSnapshot returns the current link list under the node lock.
func (nd *node) neighborsSnapshot() []graph.Vertex {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.neighbors
}

// handleData makes one forwarding decision and passes the message on.
func (nw *Network) handleData(nd *node, m *dataMsg) {
	if nd.id == m.t {
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events}
		return
	}
	if m.budget <= 0 {
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events, err: ErrHopBudget}
		return
	}
	nd.mu.Lock()
	router := nd.router
	view := nd.view
	complete := nd.viewComplete
	nd.mu.Unlock()
	if router == nil {
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events, err: ErrNotDiscovered}
		return
	}
	if complete && view != nil && !view.HasVertex(m.t) {
		// The whole component is inside the view and t is not in it: a
		// topology fault, not a routing failure.
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events,
			err: fmt.Errorf("netsim: node %d sees its whole component without %d: %w", nd.id, m.t, ErrPartitioned)}
		return
	}
	next, err := router(m.s, m.t, nd.id, m.prev)
	if err != nil {
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events, err: fmt.Errorf("at node %d: %w", nd.id, err)}
		return
	}
	legal := false
	for _, nb := range nd.neighborsSnapshot() {
		if nb == next {
			legal = true
			break
		}
	}
	if !legal {
		m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events, err: fmt.Errorf("netsim: node %d chose non-neighbour %d", nd.id, next)}
		return
	}
	m.prev = nd.id
	m.route = append(m.route, next)
	m.budget--
	nw.forwardData(nd, next, m)
}

// forwardData pushes a data message one hop with hop-budgeted
// retransmission: each retry spends a unit of the hop budget, a crashed
// next hop surfaces as ErrNodeDown (the link layer's failure detector —
// no acknowledgment ever comes back), and a link that eats the whole
// budget surfaces as ErrLinkDown.
func (nw *Network) forwardData(nd *node, next graph.Vertex, m *dataMsg) {
	hop := len(m.route) - 2 // index of the forwarding node in the route
	nw.dataForwards.Add(1)
	round := int(nw.round.Load())
	maxAttempts := nw.plan.Attempts()
	for attempt := 1; ; attempt++ {
		if nw.isDown(next, round) {
			m.events = append(m.events, fault.Event{Kind: "node-down", From: nd.id, To: next, Hop: hop, Attempt: attempt})
			m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events,
				err: fmt.Errorf("netsim: next hop %d from node %d: %w", next, nd.id, ErrNodeDown)}
			return
		}
		d := nw.inj.Deliver(nd.id, next, fault.ClassData, m.id, attempt, round)
		if !d.Drop {
			if d.Delay > 0 {
				nw.delayed.Add(1)
				m.events = append(m.events, fault.Event{Kind: "delay", From: nd.id, To: next, Hop: hop, Attempt: attempt})
			}
			nw.enqueue(next, message{from: nd.id, data: m, delay: d.Delay})
			return
		}
		nw.dropped.Add(1)
		m.events = append(m.events, fault.Event{Kind: "drop", From: nd.id, To: next, Hop: hop, Attempt: attempt})
		m.retries++
		nw.dataRetries.Add(1)
		m.budget--
		if m.budget <= 0 {
			m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events, err: ErrHopBudget}
			return
		}
		if attempt >= maxAttempts {
			m.done <- deliverResult{route: m.route, retries: m.retries, events: m.events,
				err: fmt.Errorf("netsim: link %d->%d: %w", nd.id, next, ErrLinkDown)}
			return
		}
		m.events = append(m.events, fault.Event{Kind: "retransmit", From: nd.id, To: next, Hop: hop, Attempt: attempt + 1})
	}
}

// SendResult is the detailed outcome of one routed message: the
// traversed route, link-layer retransmissions spent, and the fault
// events encountered along the way.
type SendResult struct {
	Route   []graph.Vertex
	Retries int
	Events  []fault.Event
	Err     error
}

// Send routes one message from s to t through the running network and
// returns the traversed route (s first, t last). The hop budget is
// 4·n·m — far beyond any legal deterministic walk — so loops surface as
// ErrHopBudget, while topology faults surface as ErrPartitioned or
// ErrNodeDown.
func (nw *Network) Send(s, t graph.Vertex) ([]graph.Vertex, error) {
	res := nw.SendDetailed(s, t)
	return res.Route, res.Err
}

// SendDetailed is Send with the full fault-event trace.
func (nw *Network) SendDetailed(s, t graph.Vertex) SendResult {
	nw.mu.Lock()
	switch {
	case nw.stopped:
		nw.mu.Unlock()
		return SendResult{Err: ErrStopped}
	case !nw.discovered:
		nw.mu.Unlock()
		return SendResult{Err: ErrNotDiscovered}
	}
	nw.mu.Unlock()
	if _, ok := nw.nodes[s]; !ok {
		return SendResult{Err: fmt.Errorf("%w: %d", ErrUnknownNode, s)}
	}
	if _, ok := nw.nodes[t]; !ok {
		return SendResult{Err: fmt.Errorf("%w: %d", ErrUnknownNode, t)}
	}
	round := int(nw.round.Load())
	if nw.isDown(s, round) {
		return SendResult{Err: fmt.Errorf("netsim: origin %d: %w", s, ErrNodeDown)}
	}
	if nw.isDown(t, round) {
		return SendResult{Err: fmt.Errorf("netsim: destination %d: %w", t, ErrNodeDown)}
	}
	done := make(chan deliverResult, 1)
	msg := &dataMsg{
		id:     nw.msgID.Add(1),
		s:      s,
		t:      t,
		prev:   graph.NoVertex,
		route:  []graph.Vertex{s},
		budget: 4 * (nw.g.N() + 1) * (nw.g.M() + 1),
		done:   done,
	}
	nw.enqueue(s, message{from: s, data: msg})
	select {
	case res := <-done:
		return SendResult{Route: res.route, Retries: res.retries, Events: res.events, Err: res.err}
	case <-nw.stop:
		return SendResult{Err: ErrStopped}
	}
}

// Stats reports the protocol costs accumulated so far: link-state
// transmissions (the price of k-hop discovery, growing with k and the
// density — the trade-off behind the paper's "each node can periodically
// acquire and update information about its neighbourhood"), the
// fault-tolerance overhead (acknowledgments and retransmissions), data
// forwards, and the injector's toll.
type Stats struct {
	// LSATransmissions counts first-attempt announcement sends — with a
	// zero fault plan this matches the perfect-channel flood exactly.
	LSATransmissions int64
	// LSARetransmissions counts retry attempts for unacknowledged
	// transfers.
	LSARetransmissions int64
	// AckTransmissions counts discovery acknowledgments.
	AckTransmissions int64
	// DataForwards counts per-hop forwarding decisions.
	DataForwards int64
	// DataRetries counts hop-budgeted data retransmissions.
	DataRetries int64
	// Dropped, Duplicated, and Delayed count the fault injector's
	// rulings across all classes.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	// DeadDeclared counts neighbour-death declarations.
	DeadDeclared int64
	// DiscoveryRounds is the number of settling rounds the last
	// discovery needed (0 on a perfect network).
	DiscoveryRounds int64
}

// ControlMessages is the total discovery traffic: announcements,
// retransmissions, and acknowledgments.
func (s Stats) ControlMessages() int64 {
	return s.LSATransmissions + s.LSARetransmissions + s.AckTransmissions
}

// Stats returns a snapshot of the protocol counters.
func (nw *Network) Stats() Stats {
	return Stats{
		LSATransmissions:   nw.lsaTransmissions.Load(),
		LSARetransmissions: nw.lsaRetransmissions.Load(),
		AckTransmissions:   nw.ackTransmissions.Load(),
		DataForwards:       nw.dataForwards.Load(),
		DataRetries:        nw.dataRetries.Load(),
		Dropped:            nw.dropped.Load(),
		Duplicated:         nw.duplicated.Load(),
		Delayed:            nw.delayed.Load(),
		DeadDeclared:       nw.deadDeclared.Load(),
		DiscoveryRounds:    nw.discoveryRounds.Load(),
	}
}
