package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"klocal/internal/fault"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/route"
)

func startFaulty(t *testing.T, g *graph.Graph, k int, alg route.Algorithm, plan fault.Plan) *Network {
	t.Helper()
	nw := NewFaulty(g, k, alg, plan)
	nw.Start()
	t.Cleanup(nw.Stop)
	if err := nw.Discover(); err != nil {
		t.Fatalf("discover: %v", err)
	}
	return nw
}

// routeString canonicalizes a route for golden comparison.
func routeString(r []graph.Vertex) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ">")
}

// TestZeroFaultPlanMatchesGolden pins the zero-fault simulator to the
// pre-fault-layer behaviour, recorded from the seed implementation on
// fixed seeds: identical routes everywhere, the identical LSA count on
// the race-free cycle topology, and zero fault-layer activity. (LSA
// counts on denser graphs are scheduling-dependent even in the seed
// simulator — first-arrival TTL races — so those assert flooding bounds
// instead.)
func TestZeroFaultPlanMatchesGolden(t *testing.T) {
	// Scenario 1: Cycle(12), Algorithm3, k = T(n) = 6.
	{
		g := gen.Cycle(12)
		alg := route.Algorithm3()
		nw := startFaulty(t, g, alg.MinK(12), alg, fault.Plan{})
		r1, err := nw.Send(0, 6)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := nw.Send(3, 11)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := routeString(r1), "0>1>2>3>4>5>6"; got != want {
			t.Errorf("cycle route 0->6 = %s, want %s", got, want)
		}
		if got, want := routeString(r2), "3>2>1>0>11"; got != want {
			t.Errorf("cycle route 3->11 = %s, want %s", got, want)
		}
		st := nw.Stats()
		if st.LSATransmissions != 228 {
			t.Errorf("cycle LSA transmissions = %d, want the golden 228", st.LSATransmissions)
		}
		if st.LSARetransmissions != 0 || st.Dropped != 0 || st.Duplicated != 0 ||
			st.Delayed != 0 || st.DeadDeclared != 0 || st.DataRetries != 0 {
			t.Errorf("zero-fault run shows fault activity: %+v", st)
		}
		if st.DiscoveryRounds != 0 {
			t.Errorf("perfect network should settle in round 0, took %d", st.DiscoveryRounds)
		}
		nw.Stop()
	}
	// Scenario 2: RandomConnected(seed 42, n=20, p=0.15), Algorithm1,
	// k = T(n) = 5, pair stream from seed 99.
	{
		rg := rand.New(rand.NewSource(42))
		g := gen.RandomConnected(rg, 20, 0.15)
		alg := route.Algorithm1()
		nw := startFaulty(t, g, alg.MinK(20), alg, fault.Plan{})
		golden := []string{
			"17>3", "10>6>2", "2>6>10>3", "1>8>4",
			"9>7>2>12", "10>3>9", "10>3>9", "15",
		}
		vs := g.Vertices()
		pr := rand.New(rand.NewSource(99))
		for i, want := range golden {
			s := vs[pr.Intn(len(vs))]
			d := vs[pr.Intn(len(vs))]
			r, err := nw.Send(s, d)
			if err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			if got := routeString(r); got != want {
				t.Errorf("random-graph route %d = %s, want golden %s", i, got, want)
			}
		}
		nw.Stop()
	}
	// Scenario 3: Grid(4,5), Algorithm2, k = T(20) = 7.
	{
		g := gen.Grid(4, 5)
		alg := route.Algorithm2()
		nw := startFaulty(t, g, alg.MinK(g.N()), alg, fault.Plan{})
		r, err := nw.Send(0, 19)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := routeString(r), "0>1>2>3>4>9>14>19"; got != want {
			t.Errorf("grid route = %s, want golden %s", got, want)
		}
		nw.Stop()
	}
}

// paperFamilies are the structural graph families the paper's positive
// results range over, at sizes suited to fault sweeps.
func paperFamilies(n int) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     gen.Path(n),
		"cycle":    gen.Cycle(n),
		"spider":   gen.Spider(4, (n-1)/4),
		"lollipop": gen.Lollipop(n-n/3, n/3),
	}
}

// TestDiscoveryConvergesUnderLoss is the headline robustness property:
// under 20% independent loss on every link transmission, discovery still
// terminates with every node holding exactly G_k(u), and delivery is
// 100% for all pairs.
func TestDiscoveryConvergesUnderLoss(t *testing.T) {
	alg := route.Algorithm3()
	for name, g := range paperFamilies(24) {
		for _, seed := range []uint64{1, 2, 3} {
			k := alg.MinK(g.N())
			nw := startFaulty(t, g, k, alg, fault.Plan{Seed: seed, Loss: 0.2})
			for _, v := range g.Vertices() {
				want := nbhd.Extract(g, v, k).G
				got := nw.View(v)
				if got == nil || !got.Equal(want) {
					t.Fatalf("%s seed %d: lossy view at %d differs from G_k:\n got %v\nwant %v",
						name, seed, v, got, want)
				}
			}
			st := nw.Stats()
			if st.LSARetransmissions == 0 || st.Dropped == 0 {
				t.Errorf("%s seed %d: 20%% loss produced no retransmissions (%+v)", name, seed, st)
			}
			// Every pair must still deliver: data-path retransmission
			// absorbs the loss.
			vs := g.Vertices()
			rng := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < 30; i++ {
				s := vs[rng.Intn(len(vs))]
				d := vs[rng.Intn(len(vs))]
				if _, err := nw.Send(s, d); err != nil {
					t.Fatalf("%s seed %d: send %d->%d under loss: %v", name, seed, s, d, err)
				}
			}
			nw.Stop()
		}
	}
}

// TestDiscoveryUnderLossLargest exercises the acceptance bound: n = 64,
// k at the Algorithm3 threshold, 20% loss.
func TestDiscoveryUnderLossLargest(t *testing.T) {
	if testing.Short() {
		t.Skip("large lossy discovery")
	}
	g := gen.Cycle(64)
	alg := route.Algorithm3()
	k := alg.MinK(64)
	nw := startFaulty(t, g, k, alg, fault.Plan{Seed: 9, Loss: 0.2})
	for _, v := range g.Vertices() {
		want := nbhd.Extract(g, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(want) {
			t.Fatalf("lossy view at %d differs from G_k", v)
		}
	}
	if _, err := nw.Send(0, 32); err != nil {
		t.Fatalf("antipodal send: %v", err)
	}
}

// TestDiscoveryWithDuplicationAndReorder checks that sequence-number
// dedup and bounded reorder keep views exact.
func TestDiscoveryWithDuplicationAndReorder(t *testing.T) {
	g := gen.Grid(4, 5)
	alg := route.Algorithm3()
	k := alg.MinK(g.N())
	nw := startFaulty(t, g, k, alg, fault.Plan{Seed: 4, Loss: 0.1, Dup: 0.2, MaxDelay: 3})
	for _, v := range g.Vertices() {
		want := nbhd.Extract(g, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(want) {
			t.Fatalf("view at %d differs under dup+reorder", v)
		}
	}
	st := nw.Stats()
	if st.Duplicated == 0 || st.Delayed == 0 {
		t.Errorf("expected duplication and delay activity: %+v", st)
	}
	if _, err := nw.Send(0, 19); err != nil {
		t.Fatal(err)
	}
}

// liveSubgraph removes every edge incident to a crashed node, leaving
// the survivors' topology.
func liveSubgraph(g *graph.Graph, crashed ...graph.Vertex) *graph.Graph {
	down := make(map[graph.Vertex]bool)
	for _, v := range crashed {
		down[v] = true
	}
	var gone []graph.Edge
	for _, e := range g.Edges() {
		if down[e.U] || down[e.V] {
			gone = append(gone, e)
		}
	}
	return g.WithoutEdges(gone)
}

// TestDiscoveryWithCrashedNodes: nodes dead from the start are detected
// by their neighbours (retransmission budget exhausted), withdrawn via
// tombstones, and every survivor's view equals G_k(u) of the live
// topology.
func TestDiscoveryWithCrashedNodes(t *testing.T) {
	g := gen.Grid(3, 4)
	alg := route.Algorithm3()
	k := alg.MinK(g.N())
	const dead = graph.Vertex(5)
	plan := fault.Plan{
		Crashes:     []fault.Crash{{Node: dead, From: 0, To: 0}},
		MaxAttempts: 4, // speed up death declaration; no loss, so retries are pure liveness probes
	}
	nw := startFaulty(t, g, k, alg, plan)
	gLive := liveSubgraph(g, dead)
	for _, v := range g.Vertices() {
		if v == dead {
			if nw.View(v) != nil {
				t.Errorf("crashed node %d should have no view", v)
			}
			continue
		}
		want := nbhd.Extract(gLive, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(want) {
			t.Fatalf("view at %d differs from live-topology G_k:\n got %v\nwant %v", v, nw.View(v), want)
		}
	}
	if nw.Stats().DeadDeclared == 0 {
		t.Error("neighbours never declared the crashed node dead")
	}
	// Live pairs route around the hole.
	r, err := nw.Send(4, 6)
	if err != nil {
		t.Fatalf("routing around the crash: %v", err)
	}
	for _, v := range r {
		if v == dead {
			t.Fatalf("route visits the crashed node: %v", r)
		}
	}
	// Traffic to the dead node fails with the typed liveness error.
	if _, err := nw.Send(0, dead); !errors.Is(err, ErrNodeDown) {
		t.Errorf("send to crashed node: err = %v, want ErrNodeDown", err)
	}
}

// TestCrashAndRestartDuringDiscovery: a node that is down for the first
// rounds of discovery and then returns must end with — and appear in —
// exact full-topology views: its neighbours' pending retransmissions and
// the repair protocol re-deliver everything it missed, and its fresh
// announcement overrides any tombstone.
func TestCrashAndRestartDuringDiscovery(t *testing.T) {
	g := gen.Cycle(10)
	alg := route.Algorithm2()
	k := alg.MinK(10)
	plan := fault.Plan{
		Crashes: []fault.Crash{{Node: 3, From: 0, To: 6}},
	}
	nw := startFaulty(t, g, k, alg, plan)
	for _, v := range g.Vertices() {
		want := nbhd.Extract(g, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(want) {
			t.Fatalf("post-restart view at %d differs from full G_k:\n got %v\nwant %v", v, nw.View(v), want)
		}
	}
	if _, err := nw.Send(0, 3); err != nil {
		t.Fatalf("send to the restarted node: %v", err)
	}
}

// TestDroppedLSADoesNotDeadlockDiscovery is the regression test for the
// quiescence redesign: the seed implementation counted in-flight
// messages with a WaitGroup, so losing a single LSA meant Discover
// blocked forever. Drop exactly one LSA and demand termination (the test
// binary's timeout is the watchdog) with exact views.
func TestDroppedLSADoesNotDeadlockDiscovery(t *testing.T) {
	g := gen.Grid(3, 4)
	alg := route.Algorithm3()
	k := alg.MinK(g.N())
	for _, victim := range []uint64{1, 7, 19, 40} {
		inj := fault.DropIndices(fault.ClassLSA, victim)
		nw := NewWithInjector(g, k, alg, fault.Plan{}, inj)
		nw.Start()
		if err := nw.Discover(); err != nil {
			t.Fatalf("victim %d: discover: %v", victim, err)
		}
		for _, v := range g.Vertices() {
			want := nbhd.Extract(g, v, k).G
			if got := nw.View(v); got == nil || !got.Equal(want) {
				t.Fatalf("victim %d: view at %d incomplete after single drop", victim, v)
			}
		}
		if nw.Stats().LSARetransmissions == 0 {
			t.Errorf("victim %d: the dropped LSA was never retransmitted", victim)
		}
		nw.Stop()
	}
}

// TestCutEdgePartitionIsTyped (satellite): after removing a cut edge and
// rediscovering, sends across the cut fail with ErrPartitioned — a
// provable topology fault — not generic hop-budget exhaustion.
func TestCutEdgePartitionIsTyped(t *testing.T) {
	g := gen.Path(6)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(6), alg)
	if err := nw.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	_, err := nw.Send(0, 5)
	if !errors.Is(err, ErrPartitioned) {
		t.Errorf("send across the cut: err = %v, want ErrPartitioned", err)
	}
	if errors.Is(err, ErrHopBudget) {
		t.Errorf("partition misreported as hop-budget exhaustion: %v", err)
	}
	// Same-side traffic is untouched.
	if _, err := nw.Send(0, 2); err != nil {
		t.Errorf("same-side route failed: %v", err)
	}
}

// TestCrashedNextHopIsTyped: a node crashed after discovery blocks
// routes through it with ErrNodeDown, and the hop trace records the
// failure detector firing.
func TestCrashedNextHopIsTyped(t *testing.T) {
	g := gen.Path(6)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(6), alg)
	if err := nw.Crash(3); err != nil {
		t.Fatal(err)
	}
	res := nw.SendDetailed(0, 5)
	if !errors.Is(res.Err, ErrNodeDown) {
		t.Fatalf("route through crashed node: err = %v, want ErrNodeDown", res.Err)
	}
	found := false
	for _, e := range res.Events {
		if e.Kind == "node-down" && e.To == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("no node-down event in trace: %v", res.Events)
	}
	// Sending from or to the dead node fails up front.
	if _, err := nw.Send(3, 0); !errors.Is(err, ErrNodeDown) {
		t.Errorf("send from crashed origin: %v", err)
	}
	// After restart and rediscovery everything heals.
	if err := nw.Restart(3); err != nil {
		t.Fatal(err)
	}
	nw.InvalidateDiscovery()
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(0, 5); err != nil {
		t.Errorf("post-restart send: %v", err)
	}
}

// TestRediscoverIsNoopWhenCurrent (satellite): Rediscover must not
// reflood when discovery is already valid.
func TestRediscoverIsNoopWhenCurrent(t *testing.T) {
	g := gen.Cycle(8)
	alg := route.Algorithm3()
	nw := startNetwork(t, g, alg.MinK(8), alg)
	before := nw.Stats().LSATransmissions
	if err := nw.Rediscover(); err != nil {
		t.Fatal(err)
	}
	if after := nw.Stats().LSATransmissions; after != before {
		t.Errorf("Rediscover on current discovery reflooded: %d -> %d transmissions", before, after)
	}
}

// TestDataPathRetriesUnderLoss: lossy links cost retransmissions but not
// deliveries, and the retries are visible in the detailed result.
func TestDataPathRetriesUnderLoss(t *testing.T) {
	g := gen.Path(12)
	alg := route.Algorithm3()
	nw := startFaulty(t, g, alg.MinK(12), alg, fault.Plan{Seed: 21, Loss: 0.3})
	totalRetries := 0
	for i := 0; i < 20; i++ {
		res := nw.SendDetailed(0, 11)
		if res.Err != nil {
			t.Fatalf("send %d under 30%% loss: %v", i, res.Err)
		}
		totalRetries += res.Retries
		for _, e := range res.Events {
			if e.Kind != "drop" && e.Kind != "retransmit" && e.Kind != "delay" {
				t.Errorf("unexpected event kind %q", e.Kind)
			}
		}
	}
	if totalRetries == 0 {
		t.Error("30% loss across 220 hops produced zero data retries")
	}
	if nw.Stats().DataRetries == 0 {
		t.Error("stats missed the data retries")
	}
}

// TestBlackoutWindowHealsAfterDiscovery: a link blacked out for the
// first rounds forces retransmission but discovery still converges to
// exact views once the window lifts.
func TestBlackoutWindowHeals(t *testing.T) {
	g := gen.Cycle(8)
	alg := route.Algorithm3()
	k := alg.MinK(8)
	plan := fault.Plan{
		Blackouts: []fault.Blackout{{U: 0, V: 1, From: 0, To: 4}},
	}
	nw := startFaulty(t, g, k, alg, plan)
	for _, v := range g.Vertices() {
		want := nbhd.Extract(g, v, k).G
		if got := nw.View(v); got == nil || !got.Equal(want) {
			t.Fatalf("view at %d differs after blackout heals", v)
		}
	}
}
