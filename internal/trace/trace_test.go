package trace

import (
	"strings"
	"testing"

	"klocal/internal/fault"
	"klocal/internal/gen"
	"klocal/internal/geom"
	"klocal/internal/graph"
)

func TestRenderRouteAnnotations(t *testing.T) {
	g := gen.Path(6)
	// A route that first moves away from t=5, then turns around.
	route := []graph.Vertex{2, 1, 0, 1, 2, 3, 4, 5}
	out := RenderRoute(g, route, 5)
	if !strings.Contains(out, "route with 7 hops toward 5") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "↩") {
		t.Errorf("away-moves must be marked:\n%s", out)
	}
	if !strings.Contains(out, "s node 2") {
		t.Errorf("origin marker missing:\n%s", out)
	}
	if !strings.Contains(out, "t node 5") {
		t.Errorf("destination marker missing:\n%s", out)
	}
}

func TestRenderRouteEmpty(t *testing.T) {
	g := gen.Path(3)
	if out := RenderRoute(g, nil, 2); !strings.Contains(out, "empty route") {
		t.Errorf("empty route rendering: %q", out)
	}
}

func TestRenderRouteUnreachable(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	out := RenderRoute(g, []graph.Vertex{0, 1}, 3)
	if !strings.Contains(out, "∞") {
		t.Errorf("unreachable distance must render as ∞:\n%s", out)
	}
}

func TestRenderEmbedding(t *testing.T) {
	g := graph.NewBuilder().AddPath(0, 1, 2).Build()
	pos := map[graph.Vertex]geom.Point{
		0: {X: 0, Y: 0}, 1: {X: 0.5, Y: 0.5}, 2: {X: 1, Y: 1},
	}
	e, err := geom.NewEmbedding(g, pos)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEmbedding(e, []graph.Vertex{0, 1, 2}, 20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 20 {
			t.Fatalf("row width %d, want 20: %q", len(l), l)
		}
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "T") || !strings.Contains(out, "#") {
		t.Errorf("route markers missing:\n%s", out)
	}
	// Origin at bottom-left, destination at top-right.
	if lines[9][0] != 'S' {
		t.Errorf("S not at bottom-left:\n%s", out)
	}
	if lines[0][19] != 'T' {
		t.Errorf("T not at top-right:\n%s", out)
	}
}

func TestRenderEmbeddingMinimumSizes(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).Build()
	pos := map[graph.Vertex]geom.Point{0: {X: 0, Y: 0}, 1: {X: 0, Y: 0.0000000001}}
	e, err := geom.NewEmbedding(g, pos)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEmbedding(e, nil, 1, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 || len(lines[0]) < 8 {
		t.Errorf("minimum raster size not enforced: %dx%d", len(lines[0]), len(lines))
	}
}

func TestRenderAdjacency(t *testing.T) {
	g := gen.Cycle(4)
	out := RenderAdjacency(g)
	if !strings.Contains(out, "n=4 m=4") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "0: 1 3") {
		t.Errorf("adjacency of 0 missing:\n%s", out)
	}
}

func TestRenderRouteEvents(t *testing.T) {
	g := gen.Path(6)
	route := []graph.Vertex{0, 1, 2, 3}
	events := []fault.Event{
		{Kind: "drop", From: 1, To: 2, Hop: 1, Attempt: 1},
		{Kind: "retransmit", From: 1, To: 2, Hop: 1, Attempt: 2},
		{Kind: "node-down", From: 3, To: 4, Hop: 5, Attempt: 1},
	}
	out := RenderRouteEvents(g, route, 3, events)
	if !strings.Contains(out, "3 fault events") {
		t.Errorf("event count missing:\n%s", out)
	}
	if !strings.Contains(out, "drop 1->2 (attempt 1)") {
		t.Errorf("drop event missing:\n%s", out)
	}
	if !strings.Contains(out, "retransmit 1->2 (attempt 2)") {
		t.Errorf("retransmit event missing:\n%s", out)
	}
	if !strings.Contains(out, "beyond route: hop 5 node-down 3->4") {
		t.Errorf("beyond-route event missing:\n%s", out)
	}
	// The drop line must appear after hop 1's node line and before hop 2's.
	h1 := strings.Index(out, "node 1")
	drop := strings.Index(out, "drop 1->2")
	h2 := strings.Index(out, "node 2")
	if !(h1 < drop && drop < h2) {
		t.Errorf("events not interleaved at their hop:\n%s", out)
	}
}

func TestRenderRouteEventsEmpty(t *testing.T) {
	g := gen.Path(3)
	if out := RenderRouteEvents(g, nil, 2, nil); !strings.Contains(out, "empty route") {
		t.Errorf("empty route rendering: %q", out)
	}
}

func TestRouteHopsStructure(t *testing.T) {
	g := gen.Path(6)
	route := []graph.Vertex{2, 1, 0, 1, 2, 3, 4, 5}
	hops := RouteHops(g, route, 5)
	if len(hops) != len(route) {
		t.Fatalf("got %d hops, want %d", len(hops), len(route))
	}
	for i, h := range hops {
		if h.Index != i || h.Node != route[i] {
			t.Fatalf("hop %d = %+v, want index %d node %d", i, h, i, route[i])
		}
		if want := 5 - int(route[i]); h.DistToT != want {
			t.Fatalf("hop %d dist %d, want %d", i, h.DistToT, want)
		}
	}
	// Steps 1 and 2 walk away from t=5; the turnaround and onwards do not.
	for i, wantAway := range []bool{false, true, true, false, false, false, false, false} {
		if hops[i].Away != wantAway {
			t.Fatalf("hop %d away = %v, want %v", i, hops[i].Away, wantAway)
		}
	}
	if RouteHops(g, nil, 5) != nil {
		t.Fatal("empty route must yield nil hops")
	}
}

func TestRouteHopsDisconnected(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	hops := RouteHops(g, []graph.Vertex{0, 1}, 3)
	for _, h := range hops {
		if h.DistToT != -1 {
			t.Fatalf("disconnected hop %+v must report dist -1", h)
		}
	}
}
