// Package trace renders routes and topologies as plain text, for the
// CLI tools and for eyeballing counterexamples: hop-by-hop annotations
// against the destination distance, and an ASCII raster for embedded
// (geometric) networks.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"klocal/internal/fault"
	"klocal/internal/geom"
	"klocal/internal/graph"
)

// Hop is one structured step of an annotated walk — the JSON-ready form
// of the hop-by-hop view RenderRoute prints (the routing daemon attaches
// it to /route responses).
type Hop struct {
	// Index is the position in the walk (0 = origin).
	Index int `json:"i"`
	// Node is the vertex at this step.
	Node graph.Vertex `json:"node"`
	// DistToT is the remaining distance to the destination, or -1 when
	// the node is disconnected from it.
	DistToT int `json:"dist"`
	// Away marks a step that increased the remaining distance (a detour
	// or reversal).
	Away bool `json:"away,omitempty"`
}

// RouteHops annotates a walk hop by hop with the remaining distance to
// the destination — the structured form behind RenderRoute.
func RouteHops(g *graph.Graph, route []graph.Vertex, t graph.Vertex) []Hop {
	if len(route) == 0 {
		return nil
	}
	distToT := g.BFS(t)
	hops := make([]Hop, len(route))
	prevDist := -1
	for i, v := range route {
		d, ok := distToT[v]
		h := Hop{Index: i, Node: v, DistToT: -1}
		if ok {
			h.DistToT = d
			h.Away = i > 0 && prevDist >= 0 && d > prevDist
			prevDist = d
		}
		hops[i] = h
	}
	return hops
}

// RenderRoute formats a walk hop by hop, annotating each node with its
// remaining distance to the destination so detours and reversals are
// visible at a glance.
func RenderRoute(g *graph.Graph, route []graph.Vertex, t graph.Vertex) string {
	hops := RouteHops(g, route, t)
	if len(hops) == 0 {
		return "(empty route)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "route with %d hops toward %d:\n", len(route)-1, t)
	for _, h := range hops {
		distStr := "∞"
		if h.DistToT >= 0 {
			distStr = fmt.Sprint(h.DistToT)
		}
		marker := " "
		switch {
		case h.Index == 0:
			marker = "s"
		case h.Node == t:
			marker = "t"
		case h.Away:
			marker = "↩" // moving away from the destination
		}
		fmt.Fprintf(&sb, "  %3d. %s node %-6d dist(t)=%s\n", h.Index, marker, h.Node, distStr)
	}
	return sb.String()
}

// RenderRouteEvents is RenderRoute with the fault events a lossy network
// reported for the walk interleaved at the hops where they fired, so a
// trace shows where a link dropped the message, where the sender
// retransmitted, and where a dead next hop forced the typed failure.
func RenderRouteEvents(g *graph.Graph, route []graph.Vertex, t graph.Vertex, events []fault.Event) string {
	if len(route) == 0 {
		return "(empty route)\n"
	}
	byHop := make(map[int][]fault.Event, len(events))
	for _, e := range events {
		byHop[e.Hop] = append(byHop[e.Hop], e)
	}
	distToT := g.BFS(t)
	var sb strings.Builder
	fmt.Fprintf(&sb, "route with %d hops toward %d (%d fault events):\n",
		len(route)-1, t, len(events))
	prevDist := -1
	for i, v := range route {
		d, ok := distToT[v]
		distStr := "∞"
		if ok {
			distStr = fmt.Sprint(d)
		}
		marker := " "
		switch {
		case i == 0:
			marker = "s"
		case v == t:
			marker = "t"
		case ok && prevDist >= 0 && d > prevDist:
			marker = "↩"
		}
		fmt.Fprintf(&sb, "  %3d. %s node %-6d dist(t)=%s\n", i, marker, v, distStr)
		for _, e := range byHop[i] {
			fmt.Fprintf(&sb, "        ✗ %s %d->%d (attempt %d)\n", e.Kind, e.From, e.To, e.Attempt)
		}
		if ok {
			prevDist = d
		}
	}
	// Events past the last route index (e.g. the failing transmissions
	// of an undelivered message) still deserve a line.
	var tail []int
	for hop := range byHop {
		if hop >= len(route) {
			tail = append(tail, hop)
		}
	}
	sort.Ints(tail)
	for _, hop := range tail {
		for _, e := range byHop[hop] {
			fmt.Fprintf(&sb, "  beyond route: hop %d %s %d->%d (attempt %d)\n",
				hop, e.Kind, e.From, e.To, e.Attempt)
		}
	}
	return sb.String()
}

// RenderEmbedding rasters an embedded graph into a width×height character
// grid: vertices as their last label digit, route vertices highlighted
// with '#', origin 'S' and destination 'T'. Edges are not drawn (the
// raster is for topology shape, not precision).
func RenderEmbedding(e *geom.Embedding, route []graph.Vertex, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, minY := 1e18, 1e18
	maxX, maxY := -1e18, -1e18
	for _, p := range e.Pos {
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX-minX < 1e-9 {
		maxX = minX + 1
	}
	if maxY-minY < 1e-9 {
		maxY = minY + 1
	}
	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(".", width))
	}
	place := func(p geom.Point) (int, int) {
		c := int((p.X - minX) / (maxX - minX) * float64(width-1))
		r := int((maxY - p.Y) / (maxY - minY) * float64(height-1))
		return r, c
	}
	for v, p := range e.Pos {
		r, c := place(p)
		cells[r][c] = byte('0' + (int(v)%10+10)%10)
	}
	onRoute := make(map[graph.Vertex]bool, len(route))
	for _, v := range route {
		onRoute[v] = true
	}
	for v := range onRoute {
		r, c := place(e.Pos[v])
		cells[r][c] = '#'
	}
	if len(route) > 0 {
		r, c := place(e.Pos[route[0]])
		cells[r][c] = 'S'
		r, c = place(e.Pos[route[len(route)-1]])
		cells[r][c] = 'T'
	}
	var sb strings.Builder
	for _, row := range cells {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderAdjacency prints a compact adjacency listing, useful when a test
// failure needs a human-readable topology dump.
func RenderAdjacency(g *graph.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d m=%d\n", g.N(), g.M())
	for _, v := range g.Vertices() {
		fmt.Fprintf(&sb, "  %d:", v)
		g.EachAdj(v, func(w graph.Vertex) bool {
			fmt.Fprintf(&sb, " %d", w)
			return true
		})
		sb.WriteByte('\n')
	}
	return sb.String()
}
