package graph

// mirror is the int-indexed CSR twin of the map-based adjacency: vertex
// index i is g.vertices[i] (so index order and label order coincide and
// every canonical rank tie-break survives the translation), and row i is
// to[start[i]:start[i+1]], sorted ascending by index. It is built once,
// lazily, and shared by all readers; the map adjacency stays the source
// of truth for the label-space API.
type mirror struct {
	start []int32
	to    []int32
}

// ensureMirror builds the CSR mirror on first use. Graphs are immutable
// after construction, so the sync.Once publication is safe for
// concurrent readers.
func (g *Graph) ensureMirror() *mirror {
	g.csrOnce.Do(func() {
		m := &mirror{start: make([]int32, len(g.vertices)+1)}
		arcs := 0
		for _, v := range g.vertices {
			arcs += len(g.adj[v])
		}
		m.to = make([]int32, 0, arcs)
		for i, v := range g.vertices {
			m.start[i] = int32(len(m.to))
			for _, w := range g.adj[v] {
				j, _ := g.Index(w)
				m.to = append(m.to, j)
			}
		}
		m.start[len(g.vertices)] = int32(len(m.to))
		g.csr = m
	})
	return g.csr
}

// Index resolves a vertex label to its dense index (its position in the
// sorted vertex order), reporting presence. The binary search is
// hand-rolled: sort.Search's closure would allocate, and Index sits
// under every per-hop accessor of the compact routing structures.
//
//klocal:hotpath
func (g *Graph) Index(v Vertex) (int32, bool) {
	lo, hi := 0, len(g.vertices)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.vertices[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.vertices) && g.vertices[lo] == v {
		return int32(lo), true
	}
	return 0, false
}

// VertexAt returns the label of dense index i (inverse of Index).
//
//klocal:hotpath
func (g *Graph) VertexAt(i int32) Vertex { return g.vertices[i] }

// Row returns the neighbours of dense index i as dense indices, sorted
// ascending. The slice aliases the mirror; callers must not mutate it.
//
//klocal:hotpath
func (g *Graph) Row(i int32) []int32 {
	m := g.ensureMirror()
	return m.to[m.start[i]:m.start[i+1]]
}

// SearchScratch is caller-owned working memory for the int-indexed
// search primitives (DistScratch, BFSIndexed): an epoch-marked visited
// array, a distance array and a queue, all sized to the largest graph
// seen and then reused without allocating. Not safe for concurrent use;
// give each worker its own.
type SearchScratch struct {
	mark  []uint32
	dist  []int32
	queue []int32
	epoch uint32
}

// NewSearchScratch returns an empty scratch; the first search sizes it.
func NewSearchScratch() *SearchScratch { return &SearchScratch{} }

// begin readies the scratch for a graph of n vertices.
//
//klocal:hotpath
func (sc *SearchScratch) begin(n int) {
	if len(sc.mark) < n {
		//klocal:allow grows once to the largest graph seen, then reused; steady state pinned by TestSearchScratchAllocs
		sc.mark = make([]uint32, n)
		//klocal:allow same growth-once path as mark above
		sc.dist = make([]int32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: all marks are stale garbage
		clear(sc.mark)
		sc.epoch = 1
	}
	sc.queue = sc.queue[:0]
}

// seen reports whether index v was reached this search.
func (sc *SearchScratch) seen(v int32) bool { return sc.mark[v] == sc.epoch }

// visit marks index v reached at distance d and enqueues it.
//
//klocal:hotpath
func (sc *SearchScratch) visit(v, d int32) {
	sc.mark[v] = sc.epoch
	sc.dist[v] = d
	sc.queue = append(sc.queue, v)
}

// DistScratch returns the unweighted graph distance between u and v
// (Infinity if disconnected), allocating only into sc. It is
// Dist-identical: same BFS, int-indexed.
//
//klocal:hotpath
func (g *Graph) DistScratch(u, v Vertex, sc *SearchScratch) int {
	ui, uok := g.Index(u)
	vi, vok := g.Index(v)
	if !uok || !vok {
		return Infinity
	}
	if ui == vi {
		return 0
	}
	sc.begin(len(g.vertices))
	sc.visit(ui, 0)
	for head := 0; head < len(sc.queue); head++ {
		x := sc.queue[head]
		d := sc.dist[x]
		for _, y := range g.Row(x) {
			if sc.seen(y) {
				continue
			}
			if y == vi {
				return int(d) + 1
			}
			sc.visit(y, d+1)
		}
	}
	return Infinity
}
