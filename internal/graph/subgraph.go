package graph

// InducedSubgraph returns the subgraph of g induced by the given vertex
// set: those vertices plus every edge of g with both endpoints in the set.
// Vertices absent from g are ignored.
func (g *Graph) InducedSubgraph(vs []Vertex) *Graph {
	keep := make(map[Vertex]bool, len(vs))
	for _, v := range vs {
		if g.HasVertex(v) {
			keep[v] = true
		}
	}
	b := NewBuilder()
	for v := range keep {
		b.AddVertex(v)
	}
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// EdgeInducedSubgraph returns the subgraph consisting of exactly the given
// edges of g (edges not in g are ignored) and their endpoints.
func (g *Graph) EdgeInducedSubgraph(edges []Edge) *Graph {
	b := NewBuilder()
	for _, e := range edges {
		if g.HasEdge(e.U, e.V) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// WithoutEdges returns a copy of g with the given edges removed. All
// vertices are kept.
func (g *Graph) WithoutEdges(remove []Edge) *Graph {
	drop := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		drop[NewEdge(e.U, e.V)] = true
	}
	b := NewBuilder()
	for _, v := range g.vertices {
		b.AddVertex(v)
	}
	for _, e := range g.edges {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// WithoutVertex returns a copy of g with v and its incident edges removed.
func (g *Graph) WithoutVertex(v Vertex) *Graph {
	b := NewBuilder()
	for _, w := range g.vertices {
		if w != v {
			b.AddVertex(w)
		}
	}
	for _, e := range g.edges {
		if e.U != v && e.V != v {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// FilterEdges returns the subgraph of g keeping all vertices and only the
// edges for which keep returns true.
func (g *Graph) FilterEdges(keep func(Edge) bool) *Graph {
	b := NewBuilder()
	for _, v := range g.vertices {
		b.AddVertex(v)
	}
	for _, e := range g.edges {
		if keep(e) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// PermuteLabels returns a copy of g with every vertex v relabelled to
// perm[v]. It panics if perm is not defined on some vertex or is not
// injective on the vertex set — that would silently merge vertices, which
// is always a caller bug. This is the paper's adversarial relabelling.
func (g *Graph) PermuteLabels(perm map[Vertex]Vertex) *Graph {
	used := make(map[Vertex]bool, g.N())
	for _, v := range g.vertices {
		nv, ok := perm[v]
		if !ok {
			panic("graph: PermuteLabels: permutation missing vertex")
		}
		if used[nv] {
			panic("graph: PermuteLabels: permutation not injective")
		}
		used[nv] = true
	}
	b := NewBuilder()
	for _, v := range g.vertices {
		b.AddVertex(perm[v])
	}
	for _, e := range g.edges {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	return b.Build()
}

// Equal reports whether g and h have identical vertex and edge sets
// (labelled equality, not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for i, v := range g.vertices {
		if h.vertices[i] != v {
			return false
		}
	}
	for i, e := range g.edges {
		if h.edges[i] != e {
			return false
		}
	}
	return true
}

// Union returns the graph whose vertex and edge sets are the unions of
// g's and h's.
func (g *Graph) Union(h *Graph) *Graph {
	b := NewBuilder()
	for _, v := range g.vertices {
		b.AddVertex(v)
	}
	for _, v := range h.Vertices() {
		b.AddVertex(v)
	}
	for _, e := range g.edges {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range h.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
