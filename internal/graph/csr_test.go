package graph

import (
	"math/rand"
	"testing"
)

func randomConnected(r *rand.Rand, n int) *Graph {
	b := NewBuilder()
	for v := 1; v < n; v++ {
		b.AddEdge(Vertex(v), Vertex(r.Intn(v)))
	}
	extra := n / 2
	for i := 0; i < extra; i++ {
		b.AddEdge(Vertex(r.Intn(n)), Vertex(r.Intn(n)))
	}
	return b.Build()
}

// TestMirrorRoundTrip checks the CSR mirror agrees with the map
// adjacency: index/label inverses, and every row matches Adj.
func TestMirrorRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(r, 2+r.Intn(40))
		for i, v := range g.Vertices() {
			j, ok := g.Index(v)
			if !ok || int(j) != i {
				t.Fatalf("Index(%d) = %d,%v want %d", v, j, ok, i)
			}
			if g.VertexAt(j) != v {
				t.Fatalf("VertexAt(Index(%d)) = %d", v, g.VertexAt(j))
			}
			row := g.Row(j)
			adj := g.Adj(v)
			if len(row) != len(adj) {
				t.Fatalf("row %d: len %d want %d", v, len(row), len(adj))
			}
			for p, wi := range row {
				if g.VertexAt(wi) != adj[p] {
					t.Fatalf("row %d[%d] = %d want %d", v, p, g.VertexAt(wi), adj[p])
				}
			}
		}
		if _, ok := g.Index(Vertex(1 << 40)); ok {
			t.Fatal("Index found absent vertex")
		}
	}
}

// TestDistScratchMatchesDist checks the int-indexed distance equals the
// map-based one on random pairs, including disconnected ones.
func TestDistScratchMatchesDist(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sc := NewSearchScratch()
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(r, 2+r.Intn(40))
		vs := g.Vertices()
		for i := 0; i < 30; i++ {
			u, v := vs[r.Intn(len(vs))], vs[r.Intn(len(vs))]
			if got, want := g.DistScratch(u, v, sc), g.Dist(u, v); got != want {
				t.Fatalf("DistScratch(%d,%d) = %d want %d", u, v, got, want)
			}
		}
		if d := g.DistScratch(vs[0], Vertex(1<<40), sc); d != Infinity {
			t.Fatalf("absent target: got %d", d)
		}
	}
}

// TestSearchScratchAllocs pins the steady-state zero-allocation contract
// of the scratch-based search.
func TestSearchScratchAllocs(t *testing.T) {
	g := randomConnected(rand.New(rand.NewSource(9)), 64)
	vs := g.Vertices()
	sc := NewSearchScratch()
	g.DistScratch(vs[0], vs[len(vs)-1], sc) // size the scratch + build the mirror
	avg := testing.AllocsPerRun(200, func() {
		g.DistScratch(vs[0], vs[len(vs)-1], sc)
	})
	if avg != 0 {
		t.Fatalf("DistScratch allocates %v/op in steady state, want 0", avg)
	}
}
