package graph

import "sort"

// Infinity is the distance reported between vertices in different
// connected components.
const Infinity = int(^uint(0) >> 1)

// BFS returns the unweighted distance from src to every vertex reachable
// from src. Absent vertices are unreachable.
func (g *Graph) BFS(src Vertex) map[Vertex]int {
	return g.BFSBounded(src, Infinity)
}

// BFSBounded is BFS restricted to vertices within distance maxDepth of
// src. Only reached vertices appear in the result.
func (g *Graph) BFSBounded(src Vertex, maxDepth int) map[Vertex]int {
	dist := make(map[Vertex]int)
	if !g.HasVertex(src) {
		return dist
	}
	dist[src] = 0
	queue := []Vertex{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == maxDepth {
			continue
		}
		for _, w := range g.adj[u] {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the unweighted graph distance between u and v, or Infinity
// if they are disconnected.
func (g *Graph) Dist(u, v Vertex) int {
	if u == v {
		if g.HasVertex(u) {
			return 0
		}
		return Infinity
	}
	// Bidirectional would be faster; plain BFS keeps the code obvious and
	// is fine at the sizes the experiments use.
	if d, ok := g.BFS(u)[v]; ok {
		return d
	}
	return Infinity
}

// ShortestPath returns a shortest path from u to v as a vertex sequence
// including both endpoints, or nil if disconnected. Among shortest paths
// it returns the lexicographically least by successive neighbour labels,
// so results are deterministic.
func (g *Graph) ShortestPath(u, v Vertex) []Vertex {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return nil
	}
	if u == v {
		return []Vertex{u}
	}
	distToV := g.BFS(v)
	if _, ok := distToV[u]; !ok {
		return nil
	}
	path := []Vertex{u}
	cur := u
	for cur != v {
		// The lowest-labelled neighbour strictly closer to v; adjacency is
		// sorted, so the first hit is the canonical choice.
		next := NoVertex
		for _, w := range g.adj[cur] {
			if d, ok := distToV[w]; ok && d == distToV[cur]-1 {
				next = w
				break
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// NextHopToward returns the canonical next hop from u on a shortest path
// to v (the lowest-labelled neighbour that decreases the distance), or
// NoVertex if v is unreachable or u == v.
func (g *Graph) NextHopToward(u, v Vertex) Vertex {
	p := g.ShortestPath(u, v)
	if len(p) < 2 {
		return NoVertex
	}
	return p[1]
}

// Connected reports whether g is connected. The empty graph counts as
// connected.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.BFS(g.vertices[0])) == g.N()
}

// Components returns the vertex sets of the connected components, each
// sorted by label, ordered by their smallest label.
func (g *Graph) Components() [][]Vertex {
	seen := make(map[Vertex]bool, g.N())
	var comps [][]Vertex
	for _, v := range g.vertices {
		if seen[v] {
			continue
		}
		reach := g.BFS(v)
		comp := make([]Vertex, 0, len(reach))
		for w := range reach {
			seen[w] = true
			comp = append(comp, w)
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// ComponentOf returns the sorted vertex set of the component containing v,
// or nil if v is absent.
func (g *Graph) ComponentOf(v Vertex) []Vertex {
	if !g.HasVertex(v) {
		return nil
	}
	reach := g.BFS(v)
	comp := make([]Vertex, 0, len(reach))
	for w := range reach {
		comp = append(comp, w)
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

// Girth returns the length of the shortest cycle in g, or Infinity if g is
// acyclic, matching the paper's definition.
func (g *Graph) Girth() int {
	best := Infinity
	// Standard BFS-from-every-vertex girth computation: the first non-tree
	// edge closing a cycle through the root bounds the girth.
	for _, root := range g.vertices {
		dist := map[Vertex]int{root: 0}
		parent := map[Vertex]Vertex{root: NoVertex}
		queue := []Vertex{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if w == parent[u] {
					continue
				}
				if dw, seen := dist[w]; seen {
					if c := dist[u] + dw + 1; c < best {
						best = c
					}
					continue
				}
				dist[w] = dist[u] + 1
				parent[w] = u
				if 2*dist[w] < best {
					queue = append(queue, w)
				}
			}
		}
	}
	return best
}

// IsTree reports whether g is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.M() == g.N()-1
}

// HasPathAvoiding reports whether there is a path from u to v of length at
// most maxLen that uses only edges for which allow returns true. It is the
// primitive behind the dormant-edge classification.
func (g *Graph) HasPathAvoiding(u, v Vertex, maxLen int, allow func(Edge) bool) bool {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return false
	}
	if u == v {
		return true
	}
	dist := map[Vertex]int{u: 0}
	queue := []Vertex{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] == maxLen {
			continue
		}
		for _, w := range g.adj[x] {
			if _, seen := dist[w]; seen {
				continue
			}
			if !allow(NewEdge(x, w)) {
				continue
			}
			if w == v {
				return true
			}
			dist[w] = dist[x] + 1
			queue = append(queue, w)
		}
	}
	return false
}
