// Package graph implements the undirected simple graph substrate used by
// every other module: connected, unweighted, simple graphs with unique
// integer vertex labels, exactly the network model of Bose, Carmi and
// Durocher, "Bounding the Locality of Distributed Routing Algorithms".
//
// Labels induce the canonical total orders the paper relies on: vertices
// are ranked by label, and edges are ranked lexicographically by the label
// pair of their endpoints ("label each edge by concatenating the labels of
// its endpoints and order edge labels lexicographically"). All tie-breaks
// in the routing algorithms use these ranks, so graphs here are
// deterministic value-like objects: construction happens through a Builder
// and the resulting Graph is immutable.
package graph

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Vertex is a network node, identified by its unique integer label.
// The label carries no topological information (the paper's adversary may
// permute labels arbitrarily); it only induces the canonical rank order.
type Vertex int

// NoVertex is the sentinel for "no vertex" (the paper's ⊥), used for the
// predecessor of a message that has not been forwarded yet.
const NoVertex Vertex = -1 << 62

// Edge is an undirected edge. A normalized Edge has U < V; NewEdge
// normalizes.
type Edge struct {
	U, V Vertex
}

// NewEdge returns the normalized edge {u, v} with the smaller label first.
func NewEdge(u, v Vertex) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not w. It returns NoVertex if w
// is not an endpoint of e.
func (e Edge) Other(w Vertex) Vertex {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return NoVertex
	}
}

// Less reports whether e precedes f in the canonical edge rank order
// (lexicographic on the normalized endpoint labels).
func (e Edge) Less(f Edge) bool {
	if e.U != f.U {
		return e.U < f.U
	}
	return e.V < f.V
}

func (e Edge) String() string {
	return fmt.Sprintf("{%d,%d}", e.U, e.V)
}

// Graph is an immutable undirected simple graph. The zero value is the
// empty graph. Adjacency lists are kept sorted by label so that iteration
// order is deterministic everywhere.
type Graph struct {
	adj      map[Vertex][]Vertex
	vertices []Vertex // sorted
	edges    []Edge   // sorted by rank

	// csr is the lazily-built int-indexed adjacency mirror (see csr.go);
	// csrOnce publishes it safely to concurrent readers.
	csrOnce sync.Once
	csr     *mirror
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// Adding an existing vertex or edge is a no-op; self-loops are rejected.
type Builder struct {
	adj map[Vertex]map[Vertex]bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{adj: make(map[Vertex]map[Vertex]bool)}
}

// AddVertex ensures v is present.
func (b *Builder) AddVertex(v Vertex) *Builder {
	if _, ok := b.adj[v]; !ok {
		b.adj[v] = make(map[Vertex]bool)
	}
	return b
}

// AddEdge ensures the undirected edge {u, v} is present, adding endpoints
// as needed. Self-loops are ignored: the model is simple graphs.
func (b *Builder) AddEdge(u, v Vertex) *Builder {
	if u == v {
		return b
	}
	b.AddVertex(u)
	b.AddVertex(v)
	b.adj[u][v] = true
	b.adj[v][u] = true
	return b
}

// AddPath adds edges between consecutive vertices of vs.
func (b *Builder) AddPath(vs ...Vertex) *Builder {
	for i := 1; i < len(vs); i++ {
		b.AddEdge(vs[i-1], vs[i])
	}
	return b
}

// AddCycle adds the cycle through vs in order (closing the loop).
func (b *Builder) AddCycle(vs ...Vertex) *Builder {
	if len(vs) < 3 {
		return b
	}
	b.AddPath(vs...)
	b.AddEdge(vs[len(vs)-1], vs[0])
	return b
}

// Build produces the immutable Graph. The Builder remains usable.
func (b *Builder) Build() *Graph {
	g := &Graph{
		adj:      make(map[Vertex][]Vertex, len(b.adj)),
		vertices: make([]Vertex, 0, len(b.adj)),
	}
	for v, nbrs := range b.adj {
		g.vertices = append(g.vertices, v)
		list := make([]Vertex, 0, len(nbrs))
		for w := range nbrs {
			list = append(list, w)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		g.adj[v] = list
	}
	sort.Slice(g.vertices, func(i, j int) bool { return g.vertices[i] < g.vertices[j] })
	for _, u := range g.vertices {
		for _, w := range g.adj[u] {
			if u < w {
				g.edges = append(g.edges, Edge{U: u, V: w})
			}
		}
	}
	sort.Slice(g.edges, func(i, j int) bool { return g.edges[i].Less(g.edges[j]) })
	return g
}

// FromEdges builds a graph from an edge list (plus optional isolated
// vertices). Unlike the Builder it constructs the sorted adjacency
// directly — one arc slice sorted once and sliced into per-vertex rows —
// instead of a map of maps, so bulk construction does O(m log m) work
// with O(m) allocations rather than one small map per vertex.
func FromEdges(edges []Edge, isolated ...Vertex) *Graph {
	arcs := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue // simple graphs: self-loops are ignored, as in Builder
		}
		arcs = append(arcs, Edge{U: e.U, V: e.V}, Edge{U: e.V, V: e.U})
	}
	slices.SortFunc(arcs, func(a, b Edge) int {
		if c := cmp.Compare(a.U, b.U); c != 0 {
			return c
		}
		return cmp.Compare(a.V, b.V)
	})
	w := 0
	for i, a := range arcs {
		if i > 0 && a == arcs[i-1] {
			continue
		}
		arcs[w] = a
		w++
	}
	arcs = arcs[:w]

	g := &Graph{adj: make(map[Vertex][]Vertex, len(arcs)/2+len(isolated))}
	targets := make([]Vertex, len(arcs))
	for i, a := range arcs {
		targets[i] = a.V
	}
	for start := 0; start < len(arcs); {
		u := arcs[start].U
		end := start
		for end < len(arcs) && arcs[end].U == u {
			end++
		}
		g.adj[u] = targets[start:end:end]
		g.vertices = append(g.vertices, u)
		start = end
	}
	for _, v := range isolated {
		if _, ok := g.adj[v]; !ok {
			g.adj[v] = nil
			g.vertices = append(g.vertices, v)
		}
	}
	sort.Slice(g.vertices, func(i, j int) bool { return g.vertices[i] < g.vertices[j] })
	// Arcs are sorted lexicographically, so keeping the U < V half yields
	// the canonical rank order without a second sort.
	g.edges = make([]Edge, 0, len(arcs)/2)
	for _, a := range arcs {
		if a.U < a.V {
			g.edges = append(g.edges, a)
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.vertices) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Vertices returns the vertices in label order. The slice is a copy.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, len(g.vertices))
	copy(out, g.vertices)
	return out
}

// EachVertex calls fn for every vertex in label order, without
// allocating. It stops early if fn returns false.
func (g *Graph) EachVertex(fn func(v Vertex) bool) {
	for _, v := range g.vertices {
		if !fn(v) {
			return
		}
	}
}

// Edges returns the edges in canonical rank order. The slice is a copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// HasVertex reports whether v is a vertex of g.
func (g *Graph) HasVertex(v Vertex) bool {
	_, ok := g.adj[v]
	return ok
}

// HasEdge reports whether {u, v} is an edge of g.
func (g *Graph) HasEdge(u, v Vertex) bool {
	nbrs := g.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Adj returns the neighbours of v in label order. The slice is a copy;
// it is nil if v has no neighbours or is absent.
func (g *Graph) Adj(v Vertex) []Vertex {
	nbrs := g.adj[v]
	if len(nbrs) == 0 {
		return nil
	}
	out := make([]Vertex, len(nbrs))
	copy(out, nbrs)
	return out
}

// Deg returns the degree of v (0 if absent).
func (g *Graph) Deg(v Vertex) int { return len(g.adj[v]) }

// EachAdj calls fn for every neighbour of v in label order, without
// allocating. It stops early if fn returns false.
func (g *Graph) EachAdj(v Vertex, fn func(w Vertex) bool) {
	for _, w := range g.adj[v] {
		if !fn(w) {
			return
		}
	}
}

// MinVertex returns the lowest-labelled vertex; it panics on the empty
// graph (programming error).
func (g *Graph) MinVertex() Vertex {
	if len(g.vertices) == 0 {
		panic("graph: MinVertex on empty graph")
	}
	return g.vertices[0]
}

// String renders a compact description, useful in test failures.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{n=%d m=%d;", g.N(), g.M())
	for i, e := range g.edges {
		if i > 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
