package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// builderFromEdges is the previous map-of-maps implementation, kept as
// the differential reference (and benchmark baseline) for the direct
// sorted construction.
func builderFromEdges(edges []Edge, isolated ...Vertex) *Graph {
	b := NewBuilder()
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	for _, v := range isolated {
		b.AddVertex(v)
	}
	return b.Build()
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := Vertex(rng.Intn(n))
		v := Vertex(rng.Intn(n))
		edges = append(edges, Edge{U: u, V: v}) // self-loops and dups on purpose
	}
	return edges
}

func TestFromEdgesMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		edges    []Edge
		isolated []Vertex
	}{
		{nil, nil},
		{nil, []Vertex{4, 2, 2, 4}},
		{[]Edge{{U: 1, V: 1}}, nil}, // self-loop only
		{[]Edge{{U: 3, V: 1}, {U: 1, V: 3}, {U: 3, V: 1}}, []Vertex{1, 9}},
		{randomEdges(rng, 30, 120), []Vertex{50, 51}},
		{randomEdges(rng, 200, 1000), nil},
	}
	for i, tc := range cases {
		got := FromEdges(tc.edges, tc.isolated...)
		want := builderFromEdges(tc.edges, tc.isolated...)
		if got.String() != want.String() {
			t.Fatalf("case %d:\n got %s\nwant %s", i, got, want)
		}
		if gv, wv := fmt.Sprint(got.Vertices()), fmt.Sprint(want.Vertices()); gv != wv {
			t.Fatalf("case %d: vertices %s, want %s", i, gv, wv)
		}
		for _, v := range want.Vertices() {
			if ga, wa := fmt.Sprint(got.Adj(v)), fmt.Sprint(want.Adj(v)); ga != wa {
				t.Fatalf("case %d: adj(%d) %s, want %s", i, v, ga, wa)
			}
		}
	}
}

func benchmarkEdges(n int) []Edge {
	rng := rand.New(rand.NewSource(9))
	// A connected-ish sparse graph: a ring plus random chords.
	edges := make([]Edge, 0, 3*n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: Vertex(i), V: Vertex((i + 1) % n)})
	}
	edges = append(edges, randomEdges(rng, n, 2*n)...)
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		edges := benchmarkEdges(n)
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FromEdges(edges)
			}
		})
		b.Run(fmt.Sprintf("builder/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				builderFromEdges(edges)
			}
		})
	}
}
