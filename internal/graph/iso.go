package graph

import "sort"

// Isomorphic reports whether g and h are isomorphic. It is a brute-force
// backtracking check with degree-sequence pruning, intended for the small
// graphs (n ≲ 10) used in exhaustive tests; larger inputs work but may be
// slow.
func (g *Graph) Isomorphic(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	if g.N() == 0 {
		return true
	}
	if !sameDegreeSequence(g, h) {
		return false
	}
	gv := g.Vertices()
	// Order g's vertices by decreasing degree: high-degree vertices are the
	// most constrained, so mapping them first prunes earlier.
	sort.Slice(gv, func(i, j int) bool {
		di, dj := g.Deg(gv[i]), g.Deg(gv[j])
		if di != dj {
			return di > dj
		}
		return gv[i] < gv[j]
	})
	hv := h.Vertices()
	mapping := make(map[Vertex]Vertex, len(gv))
	used := make(map[Vertex]bool, len(hv))
	return matchNext(g, h, gv, hv, mapping, used, 0)
}

func sameDegreeSequence(g, h *Graph) bool {
	degs := func(x *Graph) []int {
		out := make([]int, 0, x.N())
		for _, v := range x.Vertices() {
			out = append(out, x.Deg(v))
		}
		sort.Ints(out)
		return out
	}
	dg, dh := degs(g), degs(h)
	for i := range dg {
		if dg[i] != dh[i] {
			return false
		}
	}
	return true
}

func matchNext(g, h *Graph, gv, hv []Vertex, mapping map[Vertex]Vertex, used map[Vertex]bool, i int) bool {
	if i == len(gv) {
		return true
	}
	u := gv[i]
	for _, cand := range hv {
		if used[cand] || g.Deg(u) != h.Deg(cand) {
			continue
		}
		ok := true
		for _, prev := range gv[:i] {
			if g.HasEdge(u, prev) != h.HasEdge(cand, mapping[prev]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mapping[u] = cand
		used[cand] = true
		if matchNext(g, h, gv, hv, mapping, used, i+1) {
			return true
		}
		delete(mapping, u)
		delete(used, cand)
	}
	return false
}
