package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEdgeNormalizes(t *testing.T) {
	tests := []struct {
		giveU, giveV Vertex
		want         Edge
	}{
		{1, 2, Edge{1, 2}},
		{2, 1, Edge{1, 2}},
		{5, 5, Edge{5, 5}},
		{-3, 0, Edge{-3, 0}},
	}
	for _, tt := range tests {
		if got := NewEdge(tt.giveU, tt.giveV); got != tt.want {
			t.Errorf("NewEdge(%d,%d) = %v, want %v", tt.giveU, tt.giveV, got, tt.want)
		}
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(3, 7)
	if got := e.Other(3); got != 7 {
		t.Errorf("Other(3) = %d, want 7", got)
	}
	if got := e.Other(7); got != 3 {
		t.Errorf("Other(7) = %d, want 3", got)
	}
	if got := e.Other(9); got != NoVertex {
		t.Errorf("Other(9) = %d, want NoVertex", got)
	}
}

func TestEdgeLess(t *testing.T) {
	tests := []struct {
		a, b Edge
		want bool
	}{
		{NewEdge(1, 2), NewEdge(1, 3), true},
		{NewEdge(1, 3), NewEdge(1, 2), false},
		{NewEdge(1, 5), NewEdge(2, 3), true},
		{NewEdge(2, 3), NewEdge(2, 3), false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestBuilderBasics(t *testing.T) {
	g := NewBuilder().AddEdge(1, 2).AddEdge(2, 3).AddVertex(9).Build()
	if g.N() != 4 {
		t.Fatalf("N() = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("expected edge {1,2} in both orientations")
	}
	if g.HasEdge(1, 3) {
		t.Error("unexpected edge {1,3}")
	}
	if !g.HasVertex(9) || g.Deg(9) != 0 {
		t.Error("expected isolated vertex 9")
	}
}

func TestBuilderIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := NewBuilder().AddEdge(1, 1).AddEdge(1, 2).AddEdge(2, 1).Build()
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop must be rejected")
	}
}

func TestAdjSortedAndCopied(t *testing.T) {
	g := NewBuilder().AddEdge(5, 3).AddEdge(5, 9).AddEdge(5, 1).Build()
	adj := g.Adj(5)
	want := []Vertex{1, 3, 9}
	if len(adj) != len(want) {
		t.Fatalf("Adj(5) = %v, want %v", adj, want)
	}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("Adj(5) = %v, want %v", adj, want)
		}
	}
	adj[0] = 99
	if g.Adj(5)[0] != 1 {
		t.Error("Adj must return a copy")
	}
}

func TestVerticesAndEdgesOrdered(t *testing.T) {
	g := NewBuilder().AddEdge(4, 2).AddEdge(3, 1).AddEdge(2, 1).Build()
	vs := g.Vertices()
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			t.Fatalf("vertices not sorted: %v", vs)
		}
	}
	es := g.Edges()
	for i := 1; i < len(es); i++ {
		if !es[i-1].Less(es[i]) {
			t.Fatalf("edges not sorted: %v", es)
		}
	}
}

func TestAddPathAddCycle(t *testing.T) {
	p := NewBuilder().AddPath(1, 2, 3, 4).Build()
	if p.M() != 3 || !p.HasEdge(1, 2) || !p.HasEdge(3, 4) {
		t.Errorf("AddPath produced %v", p)
	}
	c := NewBuilder().AddCycle(1, 2, 3, 4).Build()
	if c.M() != 4 || !c.HasEdge(4, 1) {
		t.Errorf("AddCycle produced %v", c)
	}
	short := NewBuilder().AddCycle(1, 2).Build()
	if short.M() != 0 {
		t.Errorf("AddCycle with <3 vertices must be a no-op, got %v", short)
	}
}

func TestEachAdjEarlyStop(t *testing.T) {
	g := NewBuilder().AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).Build()
	var seen []Vertex
	g.EachAdj(0, func(w Vertex) bool {
		seen = append(seen, w)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("EachAdj early stop visited %v", seen)
	}
}

func TestBFSAndDist(t *testing.T) {
	// 1-2-3-4 with a chord 1-3.
	g := NewBuilder().AddPath(1, 2, 3, 4).AddEdge(1, 3).Build()
	dist := g.BFS(1)
	want := map[Vertex]int{1: 0, 2: 1, 3: 1, 4: 2}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("BFS(1)[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if got := g.Dist(1, 4); got != 2 {
		t.Errorf("Dist(1,4) = %d, want 2", got)
	}
	if got := g.Dist(4, 4); got != 0 {
		t.Errorf("Dist(4,4) = %d, want 0", got)
	}
}

func TestBFSBounded(t *testing.T) {
	g := NewBuilder().AddPath(1, 2, 3, 4, 5).Build()
	dist := g.BFSBounded(1, 2)
	if len(dist) != 3 {
		t.Fatalf("BFSBounded(1,2) reached %d vertices, want 3", len(dist))
	}
	if _, ok := dist[4]; ok {
		t.Error("vertex 4 must be outside radius 2")
	}
}

func TestDistDisconnected(t *testing.T) {
	g := NewBuilder().AddEdge(1, 2).AddEdge(3, 4).Build()
	if got := g.Dist(1, 4); got != Infinity {
		t.Errorf("Dist across components = %d, want Infinity", got)
	}
	if got := g.Dist(1, 99); got != Infinity {
		t.Errorf("Dist to absent vertex = %d, want Infinity", got)
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	// Two shortest paths 1-2-4 and 1-3-4; the canonical one goes through 2.
	g := NewBuilder().AddEdge(1, 2).AddEdge(2, 4).AddEdge(1, 3).AddEdge(3, 4).Build()
	p := g.ShortestPath(1, 4)
	if len(p) != 3 || p[0] != 1 || p[1] != 2 || p[2] != 4 {
		t.Errorf("ShortestPath(1,4) = %v, want [1 2 4]", p)
	}
	if hop := g.NextHopToward(1, 4); hop != 2 {
		t.Errorf("NextHopToward(1,4) = %d, want 2", hop)
	}
}

func TestShortestPathEdgeCases(t *testing.T) {
	g := NewBuilder().AddEdge(1, 2).AddVertex(7).Build()
	if p := g.ShortestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Errorf("ShortestPath(1,1) = %v", p)
	}
	if p := g.ShortestPath(1, 7); p != nil {
		t.Errorf("ShortestPath to disconnected vertex = %v, want nil", p)
	}
	if hop := g.NextHopToward(1, 1); hop != NoVertex {
		t.Errorf("NextHopToward(1,1) = %v, want NoVertex", hop)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewBuilder().AddEdge(1, 2).AddEdge(3, 4).AddVertex(5).Build()
	if g.Connected() {
		t.Error("graph with 3 components reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() = %v, want 3 components", comps)
	}
	if comps[0][0] != 1 || comps[1][0] != 3 || comps[2][0] != 5 {
		t.Errorf("components not ordered by smallest label: %v", comps)
	}
	one := g.ComponentOf(2)
	if len(one) != 2 || one[0] != 1 || one[1] != 2 {
		t.Errorf("ComponentOf(2) = %v", one)
	}
	empty := NewBuilder().Build()
	if !empty.Connected() {
		t.Error("empty graph must count as connected")
	}
}

func TestGirth(t *testing.T) {
	tests := []struct {
		name string
		give *Graph
		want int
	}{
		{"triangle", NewBuilder().AddCycle(1, 2, 3).Build(), 3},
		{"C5", NewBuilder().AddCycle(1, 2, 3, 4, 5).Build(), 5},
		{"tree", NewBuilder().AddPath(1, 2, 3, 4).Build(), Infinity},
		{"C5 plus chord", NewBuilder().AddCycle(1, 2, 3, 4, 5).AddEdge(1, 3).Build(), 3},
		{"two cycles", NewBuilder().AddCycle(1, 2, 3, 4).AddCycle(10, 11, 12, 13, 14, 15).Build(), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Girth(); got != tt.want {
				t.Errorf("Girth() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIsTree(t *testing.T) {
	if !NewBuilder().AddPath(1, 2, 3).Build().IsTree() {
		t.Error("path should be a tree")
	}
	if NewBuilder().AddCycle(1, 2, 3).Build().IsTree() {
		t.Error("cycle is not a tree")
	}
	if NewBuilder().AddEdge(1, 2).AddEdge(3, 4).Build().IsTree() {
		t.Error("forest is not a tree")
	}
}

func TestHasPathAvoiding(t *testing.T) {
	g := NewBuilder().AddCycle(1, 2, 3, 4, 5).Build()
	blockNone := func(Edge) bool { return true }
	if !g.HasPathAvoiding(1, 3, 2, blockNone) {
		t.Error("path 1-2-3 of length 2 should exist")
	}
	if g.HasPathAvoiding(1, 3, 1, blockNone) {
		t.Error("no path of length 1 from 1 to 3")
	}
	noEdge12 := func(e Edge) bool { return e != NewEdge(1, 2) }
	if g.HasPathAvoiding(1, 3, 2, noEdge12) {
		t.Error("avoiding {1,2} the distance 1→3 is 3")
	}
	if !g.HasPathAvoiding(1, 3, 3, noEdge12) {
		t.Error("1-5-4-3 should be found")
	}
	if !g.HasPathAvoiding(2, 2, 0, blockNone) {
		t.Error("trivial path to self")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewBuilder().AddCycle(1, 2, 3, 4).AddEdge(2, 4).Build()
	sub := g.InducedSubgraph([]Vertex{1, 2, 4, 99})
	if sub.N() != 3 {
		t.Fatalf("induced N = %d, want 3 (absent vertices ignored)", sub.N())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 4) || !sub.HasEdge(1, 4) {
		t.Errorf("induced subgraph missing edges: %v", sub)
	}
	if sub.HasEdge(2, 3) {
		t.Error("edge to excluded vertex must be dropped")
	}
}

func TestEdgeInducedSubgraph(t *testing.T) {
	g := NewBuilder().AddCycle(1, 2, 3, 4).Build()
	sub := g.EdgeInducedSubgraph([]Edge{NewEdge(1, 2), NewEdge(3, 4), NewEdge(7, 8)})
	if sub.M() != 2 || sub.N() != 4 {
		t.Errorf("edge-induced subgraph = %v", sub)
	}
}

func TestWithoutEdgesAndVertex(t *testing.T) {
	g := NewBuilder().AddCycle(1, 2, 3, 4).Build()
	h := g.WithoutEdges([]Edge{NewEdge(2, 1)})
	if h.HasEdge(1, 2) || h.M() != 3 || h.N() != 4 {
		t.Errorf("WithoutEdges = %v", h)
	}
	w := g.WithoutVertex(2)
	if w.HasVertex(2) || w.N() != 3 || w.M() != 2 {
		t.Errorf("WithoutVertex = %v", w)
	}
}

func TestFilterEdges(t *testing.T) {
	g := NewBuilder().AddCycle(1, 2, 3, 4).Build()
	h := g.FilterEdges(func(e Edge) bool { return e.U != 1 })
	if h.N() != 4 || h.M() != 2 {
		t.Errorf("FilterEdges = %v", h)
	}
}

func TestPermuteLabels(t *testing.T) {
	g := NewBuilder().AddPath(1, 2, 3).Build()
	perm := map[Vertex]Vertex{1: 30, 2: 10, 3: 20}
	h := g.PermuteLabels(perm)
	if !h.HasEdge(30, 10) || !h.HasEdge(10, 20) || h.HasEdge(30, 20) {
		t.Errorf("PermuteLabels = %v", h)
	}
}

func TestPermuteLabelsPanics(t *testing.T) {
	g := NewBuilder().AddEdge(1, 2).Build()
	assertPanics(t, "missing vertex", func() {
		g.PermuteLabels(map[Vertex]Vertex{1: 5})
	})
	assertPanics(t, "not injective", func() {
		g.PermuteLabels(map[Vertex]Vertex{1: 5, 2: 5})
	})
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestEqualAndUnion(t *testing.T) {
	a := NewBuilder().AddPath(1, 2, 3).Build()
	b := NewBuilder().AddEdge(2, 3).AddEdge(1, 2).Build()
	if !a.Equal(b) {
		t.Error("identical graphs must be Equal")
	}
	c := NewBuilder().AddPath(1, 2, 4).Build()
	if a.Equal(c) {
		t.Error("different graphs must not be Equal")
	}
	u := a.Union(NewBuilder().AddEdge(3, 4).Build())
	if u.N() != 4 || u.M() != 3 {
		t.Errorf("Union = %v", u)
	}
}

func TestIsomorphic(t *testing.T) {
	tests := []struct {
		name string
		a, b *Graph
		want bool
	}{
		{
			"relabelled path",
			NewBuilder().AddPath(1, 2, 3, 4).Build(),
			NewBuilder().AddPath(10, 30, 20, 40).Build(),
			true,
		},
		{
			"path vs star",
			NewBuilder().AddPath(1, 2, 3, 4).Build(),
			NewBuilder().AddEdge(1, 2).AddEdge(1, 3).AddEdge(1, 4).Build(),
			false,
		},
		{
			"C6 vs two triangles",
			NewBuilder().AddCycle(1, 2, 3, 4, 5, 6).Build(),
			NewBuilder().AddCycle(1, 2, 3).AddCycle(4, 5, 6).Build(),
			false,
		},
		{
			"empty graphs",
			NewBuilder().Build(),
			NewBuilder().Build(),
			true,
		},
		{
			"same degree sequence, not isomorphic",
			// C6: degrees all 2. Triangle + triangle also all 2 — covered
			// above. Here: C4 plus isolated edge vs path of 6 vertices.
			NewBuilder().AddCycle(1, 2, 3, 4).AddEdge(5, 6).Build(),
			NewBuilder().AddPath(1, 2, 3, 4, 5, 6).Build(),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Isomorphic(tt.b); got != tt.want {
				t.Errorf("Isomorphic = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsomorphicUnderRandomRelabelling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8, 0.35)
		perm := randomPermutation(rng, g)
		h := g.PermuteLabels(perm)
		if !g.Isomorphic(h) {
			t.Fatalf("graph must be isomorphic to its relabelling: %v vs %v", g, h)
		}
	}
}

func TestPropertyPermutePreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 9, 0.3)
		perm := randomPermutation(rng, g)
		h := g.PermuteLabels(perm)
		vs := g.Vertices()
		for i := 0; i < 5; i++ {
			u := vs[r.Intn(len(vs))]
			v := vs[r.Intn(len(vs))]
			if g.Dist(u, v) != h.Dist(perm[u], perm[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 10, 0.3)
		vs := g.Vertices()
		a, b, c := vs[r.Intn(len(vs))], vs[r.Intn(len(vs))], vs[r.Intn(len(vs))]
		dab, dbc, dac := g.Dist(a, b), g.Dist(b, c), g.Dist(a, c)
		if dab == Infinity || dbc == Infinity {
			return true
		}
		return dac <= dab+dbc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyShortestPathLengthMatchesDist(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 10, 0.3)
		vs := g.Vertices()
		u, v := vs[r.Intn(len(vs))], vs[r.Intn(len(vs))]
		p := g.ShortestPath(u, v)
		d := g.Dist(u, v)
		if d == Infinity {
			return p == nil
		}
		if len(p) != d+1 || p[0] != u || p[len(p)-1] != v {
			return false
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomGraph returns a G(n, p) graph on labels 0..n-1.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(Vertex(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(Vertex(i), Vertex(j))
			}
		}
	}
	return b.Build()
}

// randomPermutation returns a random bijection of g's labels onto
// themselves.
func randomPermutation(rng *rand.Rand, g *Graph) map[Vertex]Vertex {
	vs := g.Vertices()
	shuffled := make([]Vertex, len(vs))
	copy(shuffled, vs)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	perm := make(map[Vertex]Vertex, len(vs))
	for i, v := range vs {
		perm[v] = shuffled[i]
	}
	return perm
}
