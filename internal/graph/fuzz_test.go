package graph

import (
	"testing"
)

// FuzzBuilderInvariants drives the Builder with arbitrary edge bytes and
// checks structural invariants of the built graph.
func FuzzBuilderInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{0, 0, 5, 5})
	f.Add([]byte{9, 1, 1, 9, 3, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder()
		for i := 0; i+1 < len(data); i += 2 {
			b.AddEdge(Vertex(data[i]%32), Vertex(data[i+1]%32))
		}
		g := b.Build()
		// Adjacency symmetric, sorted, self-loop free; M consistent.
		degSum := 0
		for _, v := range g.Vertices() {
			adj := g.Adj(v)
			degSum += len(adj)
			for i, w := range adj {
				if w == v {
					t.Fatalf("self-loop at %d", v)
				}
				if i > 0 && adj[i-1] >= w {
					t.Fatalf("adjacency of %d not strictly sorted: %v", v, adj)
				}
				if !g.HasEdge(w, v) {
					t.Fatalf("asymmetric edge {%d,%d}", v, w)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m = %d", degSum, 2*g.M())
		}
		// Components partition the vertex set.
		seen := make(map[Vertex]bool)
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					t.Fatalf("vertex %d in two components", v)
				}
				seen[v] = true
			}
		}
		if len(seen) != g.N() {
			t.Fatalf("components cover %d of %d vertices", len(seen), g.N())
		}
	})
}

// FuzzDistanceMetric checks that BFS distances form a metric consistent
// with adjacency on arbitrary graphs.
func FuzzDistanceMetric(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 4, 4, 1}, uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, a, bv uint8) {
		b := NewBuilder()
		for i := 0; i+1 < len(data); i += 2 {
			b.AddEdge(Vertex(data[i]%16), Vertex(data[i+1]%16))
		}
		g := b.Build()
		if g.N() == 0 {
			return
		}
		vs := g.Vertices()
		u := vs[int(a)%len(vs)]
		v := vs[int(bv)%len(vs)]
		d := g.Dist(u, v)
		switch {
		case u == v:
			if d != 0 {
				t.Fatalf("Dist(%d,%d) = %d, want 0", u, v, d)
			}
		case g.HasEdge(u, v):
			if d != 1 {
				t.Fatalf("adjacent Dist(%d,%d) = %d", u, v, d)
			}
		case d != Infinity:
			if d < 2 {
				t.Fatalf("non-adjacent Dist(%d,%d) = %d", u, v, d)
			}
			// Symmetry.
			if g.Dist(v, u) != d {
				t.Fatalf("asymmetric distance %d vs %d", d, g.Dist(v, u))
			}
			// A shortest path realizes it.
			if p := g.ShortestPath(u, v); len(p) != d+1 {
				t.Fatalf("path length %d != dist %d", len(p)-1, d)
			}
		}
	})
}
