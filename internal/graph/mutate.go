package graph

import "sort"

// This file is the copy-on-write face of the immutable Graph: derive a
// one-delta neighbour of g without rebuilding it. The derived graph
// shares every untouched adjacency row with its parent (rows are
// immutable, so aliasing is safe); only the vertex list, the edge rank
// list, and the rows of the touched endpoints are fresh. That makes a
// single-edge derivation O(n + m) in copied pointers — no hashing, no
// re-sorting — which is what internal/churn's incremental topology
// updates lean on.

// cowAdj returns a fresh adjacency map sharing every row of g.
func (g *Graph) cowAdj(extra int) map[Vertex][]Vertex {
	adj := make(map[Vertex][]Vertex, len(g.adj)+extra)
	for v, row := range g.adj {
		adj[v] = row
	}
	return adj
}

// insertSorted returns a fresh copy of row with v inserted in label
// order (row must not already contain v).
func insertSorted(row []Vertex, v Vertex) []Vertex {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	out := make([]Vertex, 0, len(row)+1)
	out = append(out, row[:i]...)
	out = append(out, v)
	return append(out, row[i:]...)
}

// removeSorted returns a fresh copy of row with v removed (no-op copy
// semantics are the caller's concern: v must be present).
func removeSorted(row []Vertex, v Vertex) []Vertex {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	out := make([]Vertex, 0, len(row)-1)
	out = append(out, row[:i]...)
	return append(out, row[i+1:]...)
}

// insertEdgeRank returns a fresh copy of edges with e inserted at its
// rank position (e must not be present).
func insertEdgeRank(edges []Edge, e Edge) []Edge {
	i := sort.Search(len(edges), func(i int) bool { return !edges[i].Less(e) })
	out := make([]Edge, 0, len(edges)+1)
	out = append(out, edges[:i]...)
	out = append(out, e)
	return append(out, edges[i:]...)
}

// removeEdgeRank returns a fresh copy of edges with e removed (e must be
// present).
func removeEdgeRank(edges []Edge, e Edge) []Edge {
	i := sort.Search(len(edges), func(i int) bool { return !edges[i].Less(e) })
	out := make([]Edge, 0, len(edges)-1)
	out = append(out, edges[:i]...)
	return append(out, edges[i+1:]...)
}

// WithEdge returns g with the undirected edge {u, v} added, creating
// absent endpoints. Self-loops and already-present edges return g
// itself (the model is simple graphs; the derivation is a no-op).
func (g *Graph) WithEdge(u, v Vertex) *Graph {
	if u == v || g.HasEdge(u, v) {
		return g
	}
	ng := &Graph{adj: g.cowAdj(2)}
	ng.vertices = g.vertices
	for _, w := range []Vertex{u, v} {
		if _, ok := ng.adj[w]; !ok {
			ng.adj[w] = nil
			ng.vertices = insertSorted(ng.vertices, w)
		}
	}
	if len(ng.vertices) == len(g.vertices) {
		// No new endpoints: the parent's vertex list is shared as-is.
		ng.vertices = g.vertices
	}
	ng.adj[u] = insertSorted(ng.adj[u], v)
	ng.adj[v] = insertSorted(ng.adj[v], u)
	ng.edges = insertEdgeRank(g.edges, NewEdge(u, v))
	return ng
}

// WithoutEdge returns g with the undirected edge {u, v} removed (both
// endpoints kept). An absent edge returns g itself.
func (g *Graph) WithoutEdge(u, v Vertex) *Graph {
	if !g.HasEdge(u, v) {
		return g
	}
	ng := &Graph{adj: g.cowAdj(0), vertices: g.vertices}
	ng.adj[u] = removeSorted(ng.adj[u], v)
	ng.adj[v] = removeSorted(ng.adj[v], u)
	ng.edges = removeEdgeRank(g.edges, NewEdge(u, v))
	return ng
}

// DropVertex returns g with v and every incident edge removed, sharing
// the adjacency rows of non-neighbours; if v is absent, g itself.
func (g *Graph) DropVertex(v Vertex) *Graph {
	if !g.HasVertex(v) {
		return g
	}
	row := g.adj[v]
	ng := &Graph{adj: g.cowAdj(0)}
	delete(ng.adj, v)
	for _, w := range row {
		ng.adj[w] = removeSorted(ng.adj[w], v)
	}
	ng.vertices = removeSorted(g.vertices, v)
	if len(row) == 0 {
		ng.edges = g.edges
	} else {
		out := make([]Edge, 0, len(g.edges)-len(row))
		for _, e := range g.edges {
			if e.U != v && e.V != v {
				out = append(out, e)
			}
		}
		ng.edges = out
	}
	return ng
}

// WithVertex returns g with the isolated vertex v added; if v is
// already present, g itself.
func (g *Graph) WithVertex(v Vertex) *Graph {
	if g.HasVertex(v) {
		return g
	}
	ng := &Graph{adj: g.cowAdj(1), edges: g.edges}
	ng.adj[v] = nil
	ng.vertices = insertSorted(g.vertices, v)
	return ng
}
