package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// tcpMember is one e2e cluster participant on a real loopback listener.
type tcpMember struct {
	m  *Member
	ln net.Listener
	hs *http.Server
}

func (tm *tcpMember) addr() string { return tm.ln.Addr().String() }

// kill simulates a crash: the listener closes (peers get connection
// refused) and the member stops without any goodbye.
func (tm *tcpMember) kill() {
	tm.hs.Close()
	tm.m.Stop()
}

// startTCPMember boots shard idx of g on a fresh loopback port.
func startTCPMember(t *testing.T, g *graph.Graph, shards, idx, k int, inc int64, seeds []string) *tcpMember {
	t.Helper()
	asn, err := NewAssignment(g.Vertices(), shards)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[graph.Vertex][]graph.Vertex)
	for _, v := range asn.Owned(idx) {
		var nbrs []graph.Vertex
		g.EachAdj(v, func(w graph.Vertex) bool {
			nbrs = append(nbrs, w)
			return true
		})
		adj[v] = nbrs
	}
	cfg := Config{
		Index:           idx,
		K:               k,
		Alg:             alg2(t),
		Incarnation:     inc,
		SelfAddr:        ln.Addr().String(),
		Seeds:           seeds,
		HelloInterval:   25 * time.Millisecond,
		DeadAfter:       300 * time.Millisecond,
		RetryTick:       10 * time.Millisecond,
		RetryBase:       20 * time.Millisecond,
		PeerDeadline:    250 * time.Millisecond,
		ForwardAttempts: 2,
		RequestTimeout:  2 * time.Second,
	}
	m, err := NewMember(cfg, asn, adj, NewHTTPTransport(nil))
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	tm := &tcpMember{m: m, ln: ln, hs: &http.Server{Handler: m.Handler()}}
	go tm.hs.Serve(ln)
	m.Start()
	return tm
}

func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestE2EClusterSurvivesCrash is the issue's acceptance scenario: a
// 5-member cluster over real TCP serves live traffic, one member is
// killed mid-traffic, and the cluster (a) keeps delivering requests
// that do not cross the dead shard, (b) fails requests through it fast
// with typed errors, and (c) fully recovers delivery and G_k(u)
// discovery after tombstone propagation and a rejoin under a fresh
// incarnation.
func TestE2EClusterSurvivesCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-listener e2e in -short mode")
	}
	const (
		shards = 5
		size   = 40 // cycle; shard i owns [8i, 8i+8)
		k      = 16 // ≥ alg2's threshold before (T(40)=14) and after (32-path: T(32)=12) the crash
		dead   = 2  // the shard that crashes (owns 16..23)
	)
	g := gen.Cycle(size)
	members := make([]*tcpMember, shards)
	var seeds []string
	for i := 0; i < shards; i++ {
		// Staggered seeds: each member only knows the ones before it;
		// gossip must complete the mesh.
		members[i] = startTCPMember(t, g, shards, i, k, 1, seeds)
		seeds = append(seeds, members[i].addr())
	}
	defer func() {
		for _, tm := range members {
			tm.kill()
		}
	}()

	waitUntil(t, "initial discovery", 15*time.Second, func() bool {
		for _, tm := range members {
			if !tm.m.Ready() {
				return false
			}
		}
		return true
	})

	// Healthy cluster: cross-shard delivery through every entry member.
	for i, tm := range members {
		rep, err := tm.m.Route(context.Background(), 2, 30, true)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Delivered {
			t.Fatalf("healthy route 2->30 via member %d: %s (%s)", i, rep.Err, rep.ErrKind)
		}
	}

	// Live traffic through the crash: random pairs via surviving
	// entries. Every outcome must be delivered or a *typed* failure —
	// no hangs, no untyped errors.
	trafficStop := make(chan struct{})
	var trafficWG sync.WaitGroup
	var trafficErr atomic.Value
	var requests, deliveredCnt atomic.Int64
	liveEntries := []int{0, 1, 3, 4}
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-trafficStop:
				return
			default:
			}
			entry := liveEntries[rng.Intn(len(liveEntries))]
			s := graph.Vertex(rng.Intn(size))
			d := graph.Vertex(rng.Intn(size))
			rep, err := members[entry].m.Route(context.Background(), s, d, false)
			if err != nil {
				trafficErr.Store(fmt.Errorf("route %d->%d via %d: %v", s, d, entry, err))
				return
			}
			requests.Add(1)
			if rep.Delivered {
				deliveredCnt.Add(1)
			} else if rep.ErrKind == "" {
				trafficErr.Store(fmt.Errorf("route %d->%d via %d failed untyped: %s", s, d, entry, rep.Err))
				return
			}
		}
	}()

	// Crash shard 2 mid-traffic.
	time.Sleep(100 * time.Millisecond)
	members[dead].kill()

	// (b) Requests into the dead shard fail fast with a typed error —
	// bounded by handoff retries or the request timeout, not a hang.
	start := time.Now()
	rep, err := members[0].m.Route(context.Background(), 2, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("route into the crashed shard delivered")
	}
	if rep.ErrKind == "" {
		t.Fatalf("dead-shard failure not typed: %s", rep.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-shard failure took %v, not fast", elapsed)
	}

	// (a) A request whose walk stays clear of the dead shard delivers
	// even before failure detection converges: 36->4 crosses only
	// shards 4 and 0.
	rep, err = members[4].m.Route(context.Background(), 36, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatalf("route 36->4 avoiding the dead shard failed: %s (%s)", rep.Err, rep.ErrKind)
	}

	// Tombstone propagation: every survivor withdraws the 8 dead
	// vertices from its discovered topology.
	waitUntil(t, "tombstone propagation", 15*time.Second, func() bool {
		for _, i := range liveEntries {
			if members[i].m.Stats().Tombstones != 8 {
				return false
			}
		}
		return true
	})

	// Route-around: 12->28's short arc runs through the dead shard; the
	// rebuilt views must route the long way and deliver.
	rep, err = members[1].m.Route(context.Background(), 12, 28, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatalf("post-tombstone route 12->28 failed: %s (%s)", rep.Err, rep.ErrKind)
	}
	for _, v := range rep.Route {
		if v >= 16 && v <= 23 {
			t.Fatalf("post-tombstone walk %v crosses the dead shard", rep.Route)
		}
	}

	// Fault counters observable through the member reports.
	var timeouts, tombs int64
	for _, i := range liveEntries {
		repMet := members[i].m.Metrics()
		timeouts += repMet.Counter("hello_timeouts")
		tombs += repMet.Counter("tombstones_issued")
	}
	if timeouts == 0 || tombs == 0 {
		t.Fatalf("fault counters silent across a crash: hello_timeouts=%d tombstones_issued=%d",
			timeouts, tombs)
	}

	close(trafficStop)
	trafficWG.Wait()
	if err, ok := trafficErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if requests.Load() == 0 || deliveredCnt.Load() == 0 {
		t.Fatalf("traffic generator routed %d requests (%d delivered); crash window unexercised",
			requests.Load(), deliveredCnt.Load())
	}

	// (c) Rejoin under a fresh incarnation on a new port: discovery,
	// tombstone refutation, and delivery into the shard all recover.
	members[dead] = startTCPMember(t, g, shards, dead, k, 2,
		[]string{members[0].addr(), members[4].addr()})
	waitUntil(t, "rejoin recovery", 15*time.Second, func() bool {
		for _, tm := range members {
			st := tm.m.Stats()
			if !st.Ready || st.Tombstones != 0 {
				return false
			}
		}
		return true
	})
	waitUntil(t, "post-rejoin delivery", 15*time.Second, func() bool {
		rep, err := members[0].m.Route(context.Background(), 2, 20, false)
		return err == nil && rep.Delivered
	})
	// And the rejoined member serves as an entry again.
	rep, err = members[dead].m.Route(context.Background(), 18, 38, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatalf("rejoined member cannot route 18->38: %s (%s)", rep.Err, rep.ErrKind)
	}
}
