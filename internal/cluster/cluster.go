// Package cluster turns klocald into a distributed routing system: N
// member processes each own a contiguous shard of the graph's vertex
// space, discover each other through gossip membership (a seed list
// plus periodic HELLO heartbeats carrying incarnation numbers), learn
// the rest of the topology through link-state announcements exchanged
// over a real transport (HTTP/TCP in production, an in-process loopback
// in tests and the klocalcheck differential), and forward routing
// requests hop by hop between shards. Every forwarding decision binds
// the paper's k-local algorithm to the G_k(u) view assembled from
// *received* announcements — never to the global topology — so the
// locality contract the repo enforces in-process (klocalvet) now holds
// across an actual network boundary.
//
// The discovery protocol reuses the netsim LSA semantics over HTTP:
// announcements carry per-origin sequence numbers (epoch'd by the
// member's incarnation so a rejoining process supersedes everything it
// announced before the crash), receipt is acknowledged per peer,
// unacknowledged transfers retransmit on fault.Plan's bounded
// exponential backoff, a peer that exhausts the budget — or stops
// HELLOing — is declared dead and its vertices tombstoned, and a
// tombstone that reaches its live origin is refuted with a fresh
// higher-sequence announcement. See DESIGN.md §11 for the protocol and
// the forwarding state machine.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/fault"
	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/route"
)

// Assignment is the static vertex→shard map every member agrees on: the
// sorted vertex label space split into contiguous ranges. It is pure
// addressing (which process answers for which label) and carries no
// topology; adjacency is only ever learned through announcements.
type Assignment struct {
	vertices []graph.Vertex // sorted
	shards   int
}

// NewAssignment splits the given vertex labels into shards contiguous
// ranges. The slice is copied and sorted.
func NewAssignment(vertices []graph.Vertex, shards int) (Assignment, error) {
	if len(vertices) == 0 {
		return Assignment{}, fmt.Errorf("cluster: empty vertex space")
	}
	if shards < 1 || shards > len(vertices) {
		return Assignment{}, fmt.Errorf("cluster: %d shards over %d vertices", shards, len(vertices))
	}
	vs := make([]graph.Vertex, len(vertices))
	copy(vs, vertices)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return Assignment{vertices: vs, shards: shards}, nil
}

// Shards returns the number of shards.
func (a Assignment) Shards() int { return a.shards }

// N returns the number of vertices in the addressed space.
func (a Assignment) N() int { return len(a.vertices) }

// Owner returns the shard index owning v, or false when v is outside
// the addressed vertex space.
func (a Assignment) Owner(v graph.Vertex) (int, bool) {
	i := sort.Search(len(a.vertices), func(i int) bool { return a.vertices[i] >= v })
	if i >= len(a.vertices) || a.vertices[i] != v {
		return 0, false
	}
	// Contiguous ranges: shard s owns positions [s·n/shards, (s+1)·n/shards).
	n := len(a.vertices)
	lo, hi := 0, a.shards
	for lo < hi {
		mid := (lo + hi) / 2
		if (mid+1)*n/a.shards <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// Owned returns shard i's vertex range (a fresh slice).
func (a Assignment) Owned(i int) []graph.Vertex {
	n := len(a.vertices)
	lo, hi := i*n/a.shards, (i+1)*n/a.shards
	out := make([]graph.Vertex, hi-lo)
	copy(out, a.vertices[lo:hi])
	return out
}

// Config tunes a cluster member.
type Config struct {
	// Index is this member's shard index in [0, Shards).
	Index int
	// Shards is the cluster size the assignment was split into.
	Shards int
	// K is the locality parameter views are assembled at.
	K int
	// Alg is the routing algorithm bound to each discovered view.
	Alg route.Algorithm
	// Incarnation orders a member's lifetimes: a rejoining process must
	// present a strictly higher incarnation to refute its own death.
	// It also epochs LSA sequence numbers, so fresh announcements
	// supersede both tombstones and pre-crash state.
	Incarnation int64
	// SelfAddr is the address this member advertises to peers.
	SelfAddr string
	// Seeds are bootstrap peer addresses (any non-empty subset of the
	// cluster; gossip spreads the rest).
	Seeds []string

	// HelloInterval paces the heartbeat/gossip loop (default 250ms).
	HelloInterval time.Duration
	// DeadAfter is how long a peer may go silent before it is declared
	// dead (default 8 × HelloInterval).
	DeadAfter time.Duration
	// RetryTick paces the retransmission loop (default 25ms).
	RetryTick time.Duration
	// RetryBase scales fault.Plan's exponential backoff schedule into
	// wall time: attempt i retries after RetryBase·Backoff(i)
	// (default 50ms).
	RetryBase time.Duration
	// MaxAttempts bounds transmissions per reliable LSA transfer before
	// the peer is declared dead (0 = fault.DefaultMaxAttempts).
	MaxAttempts int
	// BackoffCap caps the exponential backoff factor
	// (0 = fault.DefaultBackoffCap).
	BackoffCap int

	// PeerDeadline bounds one RPC to a peer — a HELLO, an LSA batch, or
	// one hop handoff attempt (default 1s).
	PeerDeadline time.Duration
	// ForwardAttempts bounds handoff retries per hop before the
	// forwarder fails the request with a typed error (default 3).
	ForwardAttempts int
	// HopBudget bounds the walk length of one request
	// (default 8·n + 16).
	HopBudget int
	// RequestTimeout bounds one entry request end to end; past it the
	// entry member answers with ErrRequestTimeout (default 10s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults(n int) Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 250 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 8 * c.HelloInterval
	}
	if c.RetryTick <= 0 {
		c.RetryTick = 25 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.PeerDeadline <= 0 {
		c.PeerDeadline = time.Second
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 3
	}
	if c.HopBudget <= 0 {
		c.HopBudget = 8*n + 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Incarnation <= 0 {
		c.Incarnation = 1
	}
	return c
}

// record is a member's stored copy of one origin vertex's announcement.
// The adjacency slice is immutable once stored.
type record struct {
	seq  uint64
	adj  []graph.Vertex
	tomb bool
}

// newer applies the netsim supersession rule: higher sequence wins, and
// at equal sequence a tombstone beats the live announcement it condemns.
func (r *record) newer(seq uint64, tomb bool) bool {
	return r == nil || seq > r.seq || (seq == r.seq && tomb && !r.tomb)
}

// Member is one cluster participant: it owns a shard of vertices,
// gossips membership, floods and stores link-state, assembles G_k(u)
// views for its owned vertices, and forwards routing requests hop by
// hop. All exported methods are safe for concurrent use.
type Member struct {
	cfg  Config
	asn  Assignment
	plan fault.Plan // retry schedule for reliable transfers
	adj  map[graph.Vertex][]graph.Vertex
	tr   Transport
	met  *metrics.Shard

	mu       sync.Mutex
	inc      int64
	seqCount uint64
	peers    map[int]*peerState
	seeds    []string // unresolved bootstrap addresses
	store    map[graph.Vertex]*record
	storeGen int64
	views    map[graph.Vertex]*boundView
	viewGen  map[graph.Vertex]int64 // per-owned-vertex minimum gen a cached view must have
	ready    bool                   // latched: every addressed vertex has a record
	stopped  bool

	waitMu  sync.Mutex
	waiters map[uint64]chan *RouteReply
	nextID  atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

// NewMember builds a member for shard cfg.Index of asn. adj must be the
// adjacency of exactly the owned vertices — the "every node knows its
// own label and the labels of its neighbours" a-priori knowledge; the
// rest of the topology is only ever learned through announcements.
func NewMember(cfg Config, asn Assignment, adj map[graph.Vertex][]graph.Vertex, tr Transport) (*Member, error) {
	if asn.shards == 0 {
		return nil, fmt.Errorf("cluster: zero-value assignment")
	}
	if cfg.Index < 0 || cfg.Index >= asn.shards {
		return nil, fmt.Errorf("cluster: shard index %d out of range [0, %d)", cfg.Index, asn.shards)
	}
	if cfg.Shards != 0 && cfg.Shards != asn.shards {
		return nil, fmt.Errorf("cluster: config says %d shards, assignment has %d", cfg.Shards, asn.shards)
	}
	cfg.Shards = asn.shards
	if cfg.Alg.Bind == nil {
		return nil, fmt.Errorf("cluster: config needs a routing algorithm")
	}
	if tr == nil {
		return nil, fmt.Errorf("cluster: nil transport")
	}
	cfg = cfg.withDefaults(asn.N())
	owned := asn.Owned(cfg.Index)
	if len(adj) != len(owned) {
		return nil, fmt.Errorf("cluster: adjacency covers %d vertices, shard %d owns %d", len(adj), cfg.Index, len(owned))
	}
	m := &Member{
		cfg:     cfg,
		asn:     asn,
		plan:    fault.Plan{MaxAttempts: cfg.MaxAttempts, BackoffCap: cfg.BackoffCap},
		adj:     make(map[graph.Vertex][]graph.Vertex, len(owned)),
		tr:      tr,
		met:     metrics.NewShard(),
		inc:     cfg.Incarnation,
		peers:   make(map[int]*peerState),
		store:   make(map[graph.Vertex]*record),
		views:   make(map[graph.Vertex]*boundView),
		viewGen: make(map[graph.Vertex]int64),
		waiters: make(map[uint64]chan *RouteReply),
		stop:    make(chan struct{}),
	}
	for _, s := range cfg.Seeds {
		if s != "" && s != cfg.SelfAddr {
			m.seeds = append(m.seeds, s)
		}
	}
	for _, v := range owned {
		nbrs, ok := adj[v]
		if !ok {
			return nil, fmt.Errorf("cluster: adjacency missing owned vertex %d", v)
		}
		own := make([]graph.Vertex, len(nbrs))
		copy(own, nbrs)
		sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
		m.adj[v] = own
	}
	m.mu.Lock()
	for _, v := range owned {
		m.reOriginateLocked(v)
	}
	m.checkReadyLocked()
	m.mu.Unlock()
	return m, nil
}

// seqEpochLocked folds the incarnation into the high half of the
// sequence space so every announcement of a later lifetime supersedes
// every announcement (and tombstone) of an earlier one.
func (m *Member) seqEpochLocked() uint64 {
	return uint64(m.inc&0x7fffffff) << 32
}

// Index returns this member's shard index.
func (m *Member) Index() int { return m.cfg.Index }

// Addr returns the advertised address.
func (m *Member) Addr() string { return m.cfg.SelfAddr }

// Assignment returns the shared vertex→shard map.
func (m *Member) Assignment() Assignment { return m.asn }

// Start launches the background heartbeat and retransmission loops.
// Members used with Converge (deterministic in-process settling) need
// not be started.
func (m *Member) Start() {
	m.startOnce.Do(func() {
		m.wg.Add(2)
		go m.helloLoop()
		go m.retryLoop()
	})
}

// Stop shuts the member down: loops exit, in-flight forwards resolve or
// are dropped, and pending waiters are released. Idempotent.
func (m *Member) Stop() {
	m.stopOnce.Do(func() {
		m.mu.Lock()
		m.stopped = true
		m.mu.Unlock()
		close(m.stop)
	})
	m.wg.Wait()
}

func (m *Member) isStopped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stopped
}

func (m *Member) helloLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.HelloInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.helloPass()
		}
	}
}

func (m *Member) retryLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.RetryTick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.retryPass(now)
		}
	}
}

// checkReadyLocked latches readiness once every addressed vertex has a
// record (live or tombstoned) — the member has heard from (or about)
// the whole vertex space and can assemble views for any destination.
func (m *Member) checkReadyLocked() {
	if !m.ready && len(m.store) == m.asn.N() {
		m.ready = true
	}
}

// Ready reports whether discovery has covered the whole vertex space.
func (m *Member) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ready && !m.stopped
}

// Stats is a point-in-time summary of the member's protocol state.
type Stats struct {
	Index       int   `json:"index"`
	Shards      int   `json:"shards"`
	Incarnation int64 `json:"incarnation"`
	Ready       bool  `json:"ready"`
	PeersAlive  int   `json:"peers_alive"`
	PeersDead   int   `json:"peers_dead"`
	Tombstones  int   `json:"tombstones"`
	Coverage    int   `json:"coverage"`
	Vertices    int   `json:"vertices"`
	StoreGen    int64 `json:"store_gen"`
	PendingLSAs int   `json:"pending_lsas"`
}

// Stats snapshots the protocol state (for /cluster/status, the e2e
// tests, and the smoke driver).
func (m *Member) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Index:       m.cfg.Index,
		Shards:      m.asn.shards,
		Incarnation: m.inc,
		Ready:       m.ready && !m.stopped,
		Coverage:    len(m.store),
		Vertices:    m.asn.N(),
		StoreGen:    m.storeGen,
	}
	for _, p := range m.peers {
		if p.dead {
			st.PeersDead++
		} else {
			st.PeersAlive++
		}
		st.PendingLSAs += len(p.pending)
	}
	for _, rec := range m.store {
		if rec.tomb {
			st.Tombstones++
		}
	}
	return st
}

// pendingCount reports outstanding reliable transfers (Converge's
// quiescence criterion).
func (m *Member) pendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.peers {
		n += len(p.pending)
	}
	return n
}

// report attaches the derived gauges to a snapshot of the counters —
// the shared body of /metrics and FinalReport. The per-class fault
// counters (lsa_retransmits, tombstones_issued/refuted, hello_timeouts,
// deaths_declared) ride along in the shard's counter set.
func (m *Member) report(name string) *metrics.Report {
	st := m.Stats()
	rep := m.met.Clone().Snapshot()
	rep.Name = name
	if reqs := rep.Counter("requests"); reqs > 0 {
		rep.Put("delivery_rate", float64(rep.Counter("delivered"))/float64(reqs))
	}
	rep.Put("peers_alive", float64(st.PeersAlive))
	rep.Put("peers_dead", float64(st.PeersDead))
	rep.Put("tombstones", float64(st.Tombstones))
	rep.Put("coverage", float64(st.Coverage))
	rep.Put("store_gen", float64(st.StoreGen))
	ready := 0.0
	if st.Ready {
		ready = 1
	}
	rep.Put("ready", ready)
	return rep
}

// Metrics renders the live cumulative report.
func (m *Member) Metrics() *metrics.Report {
	return m.report(fmt.Sprintf("klocald member %d/%d", m.cfg.Index, m.asn.shards))
}

// FinalReport is the shutdown summary, fault counters included.
func (m *Member) FinalReport() *metrics.Report {
	return m.report(fmt.Sprintf("klocald member %d/%d final", m.cfg.Index, m.asn.shards))
}
