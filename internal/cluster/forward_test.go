package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// converged builds a settled 3-shard loop cluster over a 12-cycle.
func converged(t *testing.T, lc LocalClusterConfig) ([]*Member, *LoopTransport) {
	t.Helper()
	g := gen.Cycle(12)
	lc.Shards = 3
	if lc.K == 0 {
		lc.K = 6
	}
	lc.Alg = alg2(t)
	members, lt, err := NewLocalCluster(g, lc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Converge(members, 0); err != nil {
		t.Fatal(err)
	}
	return members, lt
}

// TestHopBudgetExhaustion pins the typed budget failure: the reply
// carries ErrKind "hop_budget", the partial walk up to the hop that
// exhausted it, and the per-member trace of exactly those hops.
func TestHopBudgetExhaustion(t *testing.T) {
	members, _ := converged(t, LocalClusterConfig{HopBudget: 2})
	rep, err := members[0].Route(context.Background(), 0, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("2-hop budget delivered a 6-hop route")
	}
	if rep.ErrKind != "hop_budget" {
		t.Fatalf("ErrKind = %q (%s), want hop_budget", rep.ErrKind, rep.Err)
	}
	if !strings.Contains(rep.Err, ErrHopBudget.Error()) {
		t.Fatalf("reply error %q does not carry the typed message", rep.Err)
	}
	if rep.Hops != 2 || len(rep.Route) != 3 {
		t.Fatalf("partial walk = %v (%d hops), want the 2 budgeted hops", rep.Route, rep.Hops)
	}
	if len(rep.Steps) != len(rep.Route) {
		t.Fatalf("trace has %d steps for partial walk %v", len(rep.Steps), rep.Route)
	}
	for i, st := range rep.Steps {
		if st.Node != rep.Route[i] {
			t.Fatalf("trace step %d is %d, walk says %d", i, st.Node, rep.Route[i])
		}
	}
}

// TestPerHopDeadlineExpiry pins the typed deadline failure: a handoff
// whose transport blows the per-hop deadline surfaces ErrKind
// "peer_deadline" with the partial walk including the hop that could
// not be handed over.
func TestPerHopDeadlineExpiry(t *testing.T) {
	members, lt := converged(t, LocalClusterConfig{
		ForwardAttempts: 2,
		PeerDeadline:    50 * time.Millisecond,
	})
	// Member 1 owns vertices 4..7; stall every handoff to it.
	stalled := members[1].Addr()
	lt.Before = func(op, addr string) error {
		if op == "forward" && addr == stalled {
			return context.DeadlineExceeded
		}
		return nil
	}
	rep, err := members[0].Route(context.Background(), 2, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("stalled handoff delivered")
	}
	if rep.ErrKind != "peer_deadline" {
		t.Fatalf("ErrKind = %q (%s), want peer_deadline", rep.ErrKind, rep.Err)
	}
	retries := members[0].Metrics().Counter("forward_retries")
	if retries == 0 {
		t.Fatal("deadline expiry did not retry before failing")
	}
	// The partial walk must reach the shard boundary: the last vertex is
	// the one that could not be handed to shard 1.
	last := rep.Route[len(rep.Route)-1]
	if owner, _ := members[0].asn.Owner(last); owner != 1 {
		t.Fatalf("partial walk %v does not end at the undeliverable hop", rep.Route)
	}
	if len(rep.Steps) == 0 {
		t.Fatal("partial walk carried no trace")
	}
}

// TestPeerDownFailsFast pins the crash failure mode before detection
// has caught up: the transport refuses, the forwarder retries its
// bounded budget, and the entry gets ErrKind "peer_down" with the
// partial walk.
func TestPeerDownFailsFast(t *testing.T) {
	members, lt := converged(t, LocalClusterConfig{
		ForwardAttempts: 1,
	})
	lt.Deregister(members[1].Addr())
	rep, err := members[0].Route(context.Background(), 2, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("route through a deregistered shard delivered")
	}
	if rep.ErrKind != "peer_down" {
		t.Fatalf("ErrKind = %q (%s), want peer_down", rep.ErrKind, rep.Err)
	}
	if len(rep.Route) == 0 || rep.Route[0] != graph.Vertex(2) {
		t.Fatalf("partial walk %v lost its origin", rep.Route)
	}
}

// TestEntryValidation covers the request-shape failures: unknown
// vertices and a not-yet-converged member.
func TestEntryValidation(t *testing.T) {
	members, _ := converged(t, LocalClusterConfig{})
	rep, err := members[0].Route(context.Background(), 0, 99, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrKind != "unknown_vertex" {
		t.Fatalf("ErrKind = %q, want unknown_vertex", rep.ErrKind)
	}

	// A fresh, unconverged member must refuse with not_ready.
	g := gen.Cycle(12)
	fresh, _, err := NewLocalCluster(g, LocalClusterConfig{Shards: 3, K: 6, Alg: alg2(t)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = fresh[0].Route(context.Background(), 0, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrKind != "not_ready" {
		t.Fatalf("ErrKind = %q, want not_ready", rep.ErrKind)
	}
}

// TestRequestTimeout pins the lost-message backstop: a reply that never
// comes back (dropped by the transport) resolves as a typed timeout at
// the entry, not a hang.
func TestRequestTimeout(t *testing.T) {
	members, lt := converged(t, LocalClusterConfig{
		RequestTimeout: 100 * time.Millisecond,
	})
	lt.Before = func(op, addr string) error {
		if op == "reply" {
			return context.DeadlineExceeded
		}
		return nil
	}
	rep, err := members[0].Route(context.Background(), 2, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrKind != "timeout" {
		t.Fatalf("ErrKind = %q (%s), want timeout", rep.ErrKind, rep.Err)
	}
	lost := int64(0)
	for _, m := range members {
		lost += m.Metrics().Counter("replies_lost")
	}
	if lost == 0 {
		t.Fatal("dropped reply was not counted as lost")
	}
}
