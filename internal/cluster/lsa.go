package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"klocal/internal/graph"
)

// WireLSA is one link-state announcement on the wire: the adjacency of
// a single origin vertex under a supersession sequence number, or its
// tombstone.
type WireLSA struct {
	Origin graph.Vertex   `json:"origin"`
	Seq    uint64         `json:"seq"`
	Adj    []graph.Vertex `json:"adj,omitempty"`
	Tomb   bool           `json:"tomb,omitempty"`
}

// LSABatch carries a sender's due transfers to one peer.
type LSABatch struct {
	From PeerInfo  `json:"from"`
	LSAs []WireLSA `json:"lsas"`
}

// AckRef acknowledges receipt of one announcement.
type AckRef struct {
	Origin graph.Vertex `json:"origin"`
	Seq    uint64       `json:"seq"`
	Tomb   bool         `json:"tomb,omitempty"`
}

// LSAAck is the response to an LSABatch: receipt per announcement, plus
// the receiver's own membership row (an ack is also liveness evidence).
type LSAAck struct {
	From  PeerInfo `json:"from"`
	Acked []AckRef `json:"acked"`
}

// xfer is one reliable transfer owed to a peer: the announcement, how
// many times it has been transmitted, and when it is next due.
type xfer struct {
	l        WireLSA
	attempts int
	due      time.Time
}

// wireLSA renders a stored record for the wire.
func wireLSA(origin graph.Vertex, rec *record) WireLSA {
	return WireLSA{Origin: origin, Seq: rec.seq, Adj: rec.adj, Tomb: rec.tomb}
}

// reOriginateLocked issues a fresh announcement for an owned vertex
// with the next sequence in the current incarnation epoch — the seed
// announcement at boot, and the refutation that beats any tombstone
// issued against an earlier sequence.
func (m *Member) reOriginateLocked(v graph.Vertex) {
	m.seqCount++
	rec := &record{seq: m.seqEpochLocked() | (m.seqCount & 0xffffffff), adj: m.adj[v]}
	m.store[v] = rec
	m.storeGen++
	m.floodLocked(v, rec, -1)
}

// floodLocked queues an announcement to every live peer except the one
// it arrived from.
func (m *Member) floodLocked(origin graph.Vertex, rec *record, except int) {
	l := wireLSA(origin, rec)
	for idx, p := range m.peers {
		if idx == except || p.dead {
			continue
		}
		m.enqueueLocked(p, l)
	}
}

// enqueueLocked schedules one reliable transfer, replacing any older
// announcement for the same origin still owed to the peer.
func (m *Member) enqueueLocked(p *peerState, l WireLSA) {
	if old, ok := p.pending[l.Origin]; ok {
		if !(&record{seq: old.l.Seq, tomb: old.l.Tomb}).newer(l.Seq, l.Tomb) {
			return // the queued one is at least as new
		}
	}
	p.pending[l.Origin] = &xfer{l: l}
}

// retryPass runs one retransmission round at the given instant: every
// due transfer is (re)sent in one batch per peer, acknowledged entries
// are cleared, and a transfer that exhausts the attempt budget condemns
// its peer.
func (m *Member) retryPass(now time.Time) {
	type batch struct {
		idx  int
		addr string
		lsas []WireLSA
	}
	m.mu.Lock()
	self := m.selfInfoLocked()
	var batches []batch
	var condemned []*peerState
	for idx, p := range m.peers {
		if p.dead || p.addr == "" || len(p.pending) == 0 {
			continue
		}
		b := batch{idx: idx, addr: p.addr}
		exhausted := false
		origins := make([]graph.Vertex, 0, len(p.pending))
		for v := range p.pending {
			origins = append(origins, v)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		for _, v := range origins {
			x := p.pending[v]
			if x.due.After(now) {
				continue
			}
			x.attempts++
			if x.attempts > m.plan.Attempts() {
				exhausted = true
				break
			}
			if x.attempts > 1 {
				m.met.Count("lsa_retransmits", 1)
			}
			x.due = now.Add(m.cfg.RetryBase * time.Duration(m.plan.Backoff(x.attempts)))
			b.lsas = append(b.lsas, x.l)
		}
		if exhausted {
			condemned = append(condemned, p)
			continue
		}
		if len(b.lsas) > 0 {
			batches = append(batches, b)
		}
	}
	sort.Slice(condemned, func(i, j int) bool { return condemned[i].index < condemned[j].index })
	for _, p := range condemned {
		m.markDeadLocked(p, true)
	}
	m.mu.Unlock()

	sort.Slice(batches, func(i, j int) bool { return batches[i].idx < batches[j].idx })
	for _, b := range batches {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PeerDeadline)
		ack, err := m.tr.LSAs(ctx, b.addr, &LSABatch{From: self, LSAs: b.lsas})
		cancel()
		m.met.Count("lsa_sent", int64(len(b.lsas)))
		if err != nil {
			continue // the transfers stay pending on their backoff schedule
		}
		now := time.Now()
		m.mu.Lock()
		from := ack.From
		if from.Addr == "" {
			from.Addr = b.addr
		}
		m.mergeDirectLocked(from, now)
		if p := m.peers[b.idx]; p != nil {
			for _, a := range ack.Acked {
				x, ok := p.pending[a.Origin]
				if !ok {
					continue
				}
				// Clear the transfer when the ack covers it (netsim's
				// rule: higher seq, or equal seq unless the queued one
				// is the tombstone and the ack is not).
				if a.Seq > x.l.Seq || (a.Seq == x.l.Seq && (a.Tomb == x.l.Tomb || a.Tomb)) {
					delete(p.pending, a.Origin)
				}
			}
		}
		m.mu.Unlock()
	}
}

// handleLSAs serves an inbound batch: store whatever is newer, flood it
// onward, refute tombstones against our own live origins, and ack
// receipt of everything.
func (m *Member) handleLSAs(batch *LSABatch) *LSAAck {
	m.met.Count("lsa_recv", int64(len(batch.LSAs)))
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	from := batch.From
	m.mergeDirectLocked(from, now)
	ack := &LSAAck{From: m.selfInfoLocked(), Acked: make([]AckRef, 0, len(batch.LSAs))}
	pre := m.captureStoreLocked()
	changed := false
	for _, l := range batch.LSAs {
		ack.Acked = append(ack.Acked, AckRef{Origin: l.Origin, Seq: l.Seq, Tomb: l.Tomb})
		rec := m.store[l.Origin]
		if !rec.newer(l.Seq, l.Tomb) {
			continue
		}
		if l.Tomb {
			if _, owned := m.adj[l.Origin]; owned {
				// Our own obituary: refute it with a fresh announcement
				// instead of storing it.
				m.met.Count("tombstones_refuted", 1)
				m.reOriginateLocked(l.Origin)
				changed = true
				continue
			}
		} else if rec != nil && rec.tomb {
			m.met.Count("tombstones_refuted", 1)
		}
		adj := make([]graph.Vertex, len(l.Adj))
		copy(adj, l.Adj)
		m.store[l.Origin] = &record{seq: l.Seq, adj: adj, tomb: l.Tomb}
		m.floodLocked(l.Origin, m.store[l.Origin], from.Index)
		changed = true
	}
	if changed {
		m.storeGen++
		m.invalidateViewsLocked(pre)
		m.checkReadyLocked()
	}
	return ack
}

// Converge settles an unstarted (loop-transport) cluster determin-
// istically: members run hello and retransmission passes in index
// order until no reliable transfer is outstanding and every member is
// ready. It replaces the background loops in the klocalcheck
// differential and in unit tests, where wall-clock pacing would only
// add nondeterminism.
func Converge(members []*Member, maxRounds int) error {
	if maxRounds <= 0 {
		maxRounds = 4 * (len(members) + 2)
	}
	// A virtual clock that jumps a full hour per round: every backoff
	// schedule (capped far below an hour) has elapsed by the next round,
	// so each round retransmits everything still owed.
	base := time.Now()
	for r := 0; r < maxRounds; r++ {
		for _, m := range members {
			m.helloPass()
		}
		now := base.Add(time.Duration(r+1) * time.Hour)
		for _, m := range members {
			m.retryPass(now)
		}
		settled := true
		for _, m := range members {
			if m.pendingCount() > 0 || !m.Ready() {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
	}
	pend := make([]int, len(members))
	for i, m := range members {
		pend[i] = m.pendingCount()
	}
	return fmt.Errorf("cluster: discovery did not converge in %d rounds (pending %v)", maxRounds, pend)
}
