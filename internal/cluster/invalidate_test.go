package cluster

import (
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// flapLSAs builds the two announcements a real link flap on {u, v}
// floods: both endpoints re-originate with the edge dropped from their
// adjacency (the union store keeps an edge as long as either endpoint
// still announces it).
func flapLSAs(t *testing.T, m *Member, u, v graph.Vertex) []WireLSA {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WireLSA, 0, 2)
	for _, pair := range [2][2]graph.Vertex{{u, v}, {v, u}} {
		origin, drop := pair[0], pair[1]
		rec := m.store[origin]
		if rec == nil || rec.tomb {
			t.Fatalf("no live record for origin %d", origin)
		}
		adj := make([]graph.Vertex, 0, len(rec.adj))
		for _, w := range rec.adj {
			if w != drop {
				adj = append(adj, w)
			}
		}
		out = append(out, WireLSA{Origin: origin, Seq: rec.seq + 1, Adj: adj})
	}
	return out
}

// TestViewInvalidationIsKLocal is the cluster face of the locality
// theorem: an LSA change invalidates a member's cached bound views only
// for owned vertices within distance k of the touched endpoints. A
// flap at the far end of a path must leave every cached view of the
// first shard pointer-identical across the store generation bump; a
// flap just past the shard boundary must rebuild exactly the owned
// rows inside the k-ball and nothing else.
func TestViewInvalidationIsKLocal(t *testing.T) {
	g := gen.Path(30)
	k := 3
	members, _, err := NewLocalCluster(g, LocalClusterConfig{Shards: 3, K: k, Alg: alg2(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Converge(members, 0); err != nil {
		t.Fatal(err)
	}
	m := members[0]
	owned := m.asn.Owned(0)

	warm := func() map[graph.Vertex]*boundView {
		t.Helper()
		out := make(map[graph.Vertex]*boundView, len(owned))
		for _, v := range owned {
			bv, err := m.viewFor(v)
			if err != nil {
				t.Fatal(err)
			}
			out[v] = bv
		}
		return out
	}
	before := warm()

	// A flap 19 hops from the nearest owned vertex: outside every owned
	// k-ball, so despite the generation bump nothing may rebuild.
	m.mu.Lock()
	genBefore := m.storeGen
	m.mu.Unlock()
	m.handleLSAs(&LSABatch{From: PeerInfo{Index: 2}, LSAs: flapLSAs(t, m, 28, 29)})
	m.mu.Lock()
	if m.storeGen == genBefore {
		t.Fatal("far flap did not advance the store generation")
	}
	m.mu.Unlock()
	for v, bv := range warm() {
		if bv != before[v] {
			t.Fatalf("far flap rebuilt the view of %d (distance >> k)", v)
		}
	}

	// A flap on {10, 11}, just across the shard boundary. Owned rows in
	// B_k(10) ∪ B_k(11) rebuild against the new topology; the rest keep
	// their exact pointers.
	m.handleLSAs(&LSABatch{From: PeerInfo{Index: 1}, LSAs: flapLSAs(t, m, 10, 11)})
	post := g.WithoutEdge(10, 11)
	dirty := make(map[graph.Vertex]bool)
	for w := range g.BFSBounded(10, k) {
		dirty[w] = true
	}
	for w := range g.BFSBounded(11, k) {
		dirty[w] = true
	}
	sawDirty, sawClean := false, false
	for v, bv := range warm() {
		if dirty[v] {
			sawDirty = true
			if bv == before[v] {
				t.Fatalf("near flap kept the stale view of %d (inside the k-ball)", v)
			}
			want := nbhd.Extract(post, v, k).G
			if !bv.view.Equal(want) {
				t.Fatalf("rebuilt view of %d differs from G_%d(%d) on the post-flap graph", v, k, v)
			}
		} else {
			sawClean = true
			if bv != before[v] {
				t.Fatalf("near flap rebuilt the view of %d outside the k-ball", v)
			}
		}
	}
	if !sawDirty || !sawClean {
		t.Fatalf("test graph degenerate: dirty and clean owned rows must both exist (dirty=%v clean=%v)", sawDirty, sawClean)
	}
}
