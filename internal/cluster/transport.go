package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"klocal/internal/graph"
	"klocal/internal/route"
)

// Transport carries the four cluster RPCs. Implementations must honour
// the context deadline; a returned error means the exchange did not
// complete (the protocol layer retries on its own schedule).
type Transport interface {
	// Hello exchanges membership tables with a peer.
	Hello(ctx context.Context, addr string, msg *HelloMsg) (*HelloMsg, error)
	// LSAs delivers a batch of announcements and returns the receipt.
	LSAs(ctx context.Context, addr string, batch *LSABatch) (*LSAAck, error)
	// Forward hands an in-flight walk to the shard owning its head.
	Forward(ctx context.Context, addr string, msg *WireMessage) error
	// Reply returns a terminal RouteReply to the entry member.
	Reply(ctx context.Context, addr string, rep *RouteReply) error
}

// HTTPTransport speaks the cluster protocol over net/http against the
// endpoints Member.Handler serves.
type HTTPTransport struct {
	Client *http.Client
}

// NewHTTPTransport builds the production transport. Connection reuse
// matters here (every heartbeat and handoff is a small POST), so the
// client keeps the default pooled transport.
func NewHTTPTransport(client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPTransport{Client: client}
}

func (t *HTTPTransport) post(ctx context.Context, addr, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		// Surface the deadline as such so the forwarder can type it.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s%s: %s: %s", addr, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (t *HTTPTransport) Hello(ctx context.Context, addr string, msg *HelloMsg) (*HelloMsg, error) {
	var out HelloMsg
	if err := t.post(ctx, addr, "/cluster/hello", msg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (t *HTTPTransport) LSAs(ctx context.Context, addr string, batch *LSABatch) (*LSAAck, error) {
	var out LSAAck
	if err := t.post(ctx, addr, "/cluster/lsa", batch, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (t *HTTPTransport) Forward(ctx context.Context, addr string, msg *WireMessage) error {
	return t.post(ctx, addr, "/cluster/forward", msg, nil)
}

func (t *HTTPTransport) Reply(ctx context.Context, addr string, rep *RouteReply) error {
	return t.post(ctx, addr, "/cluster/reply", rep, nil)
}

// LoopTransport wires members together in-process: RPCs are direct
// method calls on the registered receiver. It backs the klocalcheck
// differential and the deterministic unit tests, where real sockets
// would only add scheduling noise. The optional Before hook sees every
// RPC first and can fail it — the fault-injection point for exercising
// retransmission, handoff retries, and per-hop deadlines.
type LoopTransport struct {
	mu      sync.Mutex
	members map[string]*Member

	// Before, when set, runs before each RPC (op is "hello", "lsa",
	// "forward" or "reply"). A non-nil return fails the exchange with
	// that error.
	Before func(op, addr string) error
}

// NewLoopTransport builds an empty in-process fabric.
func NewLoopTransport() *LoopTransport {
	return &LoopTransport{members: make(map[string]*Member)}
}

// Register attaches a member at an address.
func (t *LoopTransport) Register(addr string, m *Member) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members[addr] = m
}

// Deregister detaches an address — the loopback version of a crash:
// subsequent RPCs to it fail like a refused connection.
func (t *LoopTransport) Deregister(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.members, addr)
}

func (t *LoopTransport) lookup(op, addr string) (*Member, error) {
	t.mu.Lock()
	before := t.Before
	m := t.members[addr]
	t.mu.Unlock()
	if before != nil {
		if err := before(op, addr); err != nil {
			return nil, err
		}
	}
	if m == nil {
		return nil, fmt.Errorf("cluster: connection refused: %s", addr)
	}
	return m, nil
}

func (t *LoopTransport) Hello(ctx context.Context, addr string, msg *HelloMsg) (*HelloMsg, error) {
	m, err := t.lookup("hello", addr)
	if err != nil {
		return nil, err
	}
	return m.handleHello(msg), nil
}

func (t *LoopTransport) LSAs(ctx context.Context, addr string, batch *LSABatch) (*LSAAck, error) {
	m, err := t.lookup("lsa", addr)
	if err != nil {
		return nil, err
	}
	return m.handleLSAs(batch), nil
}

func (t *LoopTransport) Forward(ctx context.Context, addr string, msg *WireMessage) error {
	m, err := t.lookup("forward", addr)
	if err != nil {
		return err
	}
	// Decouple the sender from the receiver's processing, like the HTTP
	// path's serialization does: the goroutines never share the walk.
	return m.acceptForward(msg.clone())
}

func (t *LoopTransport) Reply(ctx context.Context, addr string, rep *RouteReply) error {
	m, err := t.lookup("reply", addr)
	if err != nil {
		return err
	}
	m.deliverReply(rep)
	return nil
}

// LocalClusterConfig tunes NewLocalCluster.
type LocalClusterConfig struct {
	Shards int
	K      int
	Alg    route.Algorithm
	// HopBudget, RequestTimeout, ForwardAttempts override the defaults
	// when non-zero (tests shrink them to force the typed errors).
	HopBudget       int
	RequestTimeout  time.Duration
	ForwardAttempts int
	PeerDeadline    time.Duration
}

// NewLocalCluster splits g's vertex space into shards members over a
// shared loop transport. Members are not started; settle them with
// Converge and route synchronously — the harness for the klocalcheck
// cluster differential and the forwarder unit tests.
func NewLocalCluster(g *graph.Graph, lc LocalClusterConfig) ([]*Member, *LoopTransport, error) {
	asn, err := NewAssignment(g.Vertices(), lc.Shards)
	if err != nil {
		return nil, nil, err
	}
	lt := NewLoopTransport()
	addrs := make([]string, lc.Shards)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("loop-%d", i)
	}
	members := make([]*Member, lc.Shards)
	for i := range members {
		adj := make(map[graph.Vertex][]graph.Vertex)
		for _, v := range asn.Owned(i) {
			var nbrs []graph.Vertex
			g.EachAdj(v, func(w graph.Vertex) bool {
				nbrs = append(nbrs, w)
				return true
			})
			adj[v] = nbrs
		}
		cfg := Config{
			Index:           i,
			K:               lc.K,
			Alg:             lc.Alg,
			SelfAddr:        addrs[i],
			Seeds:           addrs,
			HopBudget:       lc.HopBudget,
			RequestTimeout:  lc.RequestTimeout,
			ForwardAttempts: lc.ForwardAttempts,
			PeerDeadline:    lc.PeerDeadline,
		}
		m, err := NewMember(cfg, asn, adj, lt)
		if err != nil {
			return nil, nil, err
		}
		lt.Register(addrs[i], m)
		members[i] = m
	}
	return members, lt, nil
}
