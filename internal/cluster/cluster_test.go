package cluster

import (
	"context"
	"fmt"
	"testing"

	"klocal/internal/engine"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/route"
	"klocal/internal/sim"
)

func alg2(t *testing.T) route.Algorithm {
	t.Helper()
	return route.Algorithm2()
}

func TestAssignmentRanges(t *testing.T) {
	g := gen.Cycle(10)
	asn, err := NewAssignment(g.Vertices(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.Vertex]int)
	total := 0
	for i := 0; i < asn.Shards(); i++ {
		for _, v := range asn.Owned(i) {
			if prev, dup := seen[v]; dup {
				t.Fatalf("vertex %d owned by shards %d and %d", v, prev, i)
			}
			seen[v] = i
			owner, ok := asn.Owner(v)
			if !ok || owner != i {
				t.Fatalf("Owner(%d) = (%d, %v), want (%d, true)", v, owner, ok, i)
			}
			total++
		}
	}
	if total != g.N() {
		t.Fatalf("shards cover %d vertices, want %d", total, g.N())
	}
	if _, ok := asn.Owner(graph.Vertex(99)); ok {
		t.Fatal("Owner accepted a vertex outside the space")
	}
	if _, err := NewAssignment(nil, 1); err == nil {
		t.Fatal("NewAssignment accepted an empty vertex space")
	}
	if _, err := NewAssignment(g.Vertices(), 11); err == nil {
		t.Fatal("NewAssignment accepted more shards than vertices")
	}
}

// TestDiscoveredViewsMatchExtract is the distributed discovery
// correctness statement: after Converge, every member's assembled
// G_k(u) for each owned vertex equals nbhd.Extract on the global graph
// — the same equivalence netsim's discovery test pins, now across the
// cluster's HTTP-shaped protocol.
func TestDiscoveredViewsMatchExtract(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		shards int
		k      int
	}{
		{"cycle", gen.Cycle(18), 3, 7},
		{"lollipop", gen.Lollipop(12, 4), 4, 8},
		{"grid", gen.Grid(4, 4), 2, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			members, _, err := NewLocalCluster(tc.g, LocalClusterConfig{
				Shards: tc.shards, K: tc.k, Alg: alg2(t),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := Converge(members, 0); err != nil {
				t.Fatal(err)
			}
			for _, m := range members {
				for _, v := range m.asn.Owned(m.Index()) {
					want := nbhd.Extract(tc.g, v, tc.k).G
					got := m.View(v)
					if got == nil || !got.Equal(want) {
						t.Fatalf("member %d: discovered view of %d differs from G_%d(%d)",
							m.Index(), v, tc.k, v)
					}
				}
			}
		})
	}
}

// TestClusterRoutesMatchEngine is the in-package form of the
// klocalcheck differential: on a fault-free converged cluster, the
// distributed walk (every decision on a locally discovered view,
// crossing real shard handoffs) must be hop-identical to the
// global-graph engine's walk.
func TestClusterRoutesMatchEngine(t *testing.T) {
	g := gen.Cycle(15)
	k := 5 // alg2 threshold T(15) = 5
	alg := alg2(t)
	members, _, err := NewLocalCluster(g, LocalClusterConfig{Shards: 3, K: k, Alg: alg})
	if err != nil {
		t.Fatal(err)
	}
	if err := Converge(members, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := engine.NewSnapshot(g, k, alg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]graph.Vertex{{0, 7}, {3, 12}, {14, 1}, {5, 5}} {
		s, tt := pair[0], pair[1]
		want := snap.Route(s, tt, 0)
		if want.Outcome != sim.Delivered {
			t.Fatalf("engine route %d->%d: %s", s, tt, want.Outcome)
		}
		for entry := range members {
			rep, err := members[entry].Route(context.Background(), s, tt, true)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Delivered {
				t.Fatalf("cluster route %d->%d via member %d: %s (%s)", s, tt, entry, rep.Err, rep.ErrKind)
			}
			if fmt.Sprint(rep.Route) != fmt.Sprint(want.Route) {
				t.Fatalf("cluster route %d->%d via member %d = %v, engine walk %v",
					s, tt, entry, rep.Route, want.Route)
			}
			if len(rep.Steps) != len(rep.Route) {
				t.Fatalf("trace has %d steps for a %d-vertex walk", len(rep.Steps), len(rep.Route))
			}
		}
	}
}

// TestRetransmissionUnderLoss drops every LSA exchange for the first
// rounds and checks the bounded-backoff retransmission still converges
// — and that the retransmit counter shows it worked for its living.
func TestRetransmissionUnderLoss(t *testing.T) {
	g := gen.Cycle(12)
	members, lt, err := NewLocalCluster(g, LocalClusterConfig{Shards: 3, K: 4, Alg: alg2(t)})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	lt.Before = func(op, addr string) error {
		if op == "lsa" && drops < 20 {
			drops++
			return fmt.Errorf("injected loss")
		}
		return nil
	}
	if err := Converge(members, 64); err != nil {
		t.Fatal(err)
	}
	if drops == 0 {
		t.Fatal("loss injection never fired")
	}
	retrans := int64(0)
	for _, m := range members {
		retrans += m.Metrics().Counter("lsa_retransmits")
	}
	if retrans == 0 {
		t.Fatal("no retransmissions counted despite injected loss")
	}
}

// TestTombstoneAndRefutation drives the death/rebirth protocol by hand:
// silence a member until its peers tombstone the shard, then let it
// speak again and check the tombstones are refuted and views recover.
func TestTombstoneAndRefutation(t *testing.T) {
	g := gen.Cycle(12)
	members, lt, err := NewLocalCluster(g, LocalClusterConfig{Shards: 3, K: 6, Alg: alg2(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Converge(members, 0); err != nil {
		t.Fatal(err)
	}

	// Silence member 2 entirely: peers' transfers to it exhaust their
	// attempt budget and condemn the shard.
	deadAddr := members[2].Addr()
	lt.Before = func(op, addr string) error {
		if addr == deadAddr {
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	// New link-state (a self re-announcement) gives the survivors
	// something to reliably deliver to the silent peer.
	members[0].mu.Lock()
	members[0].reOriginateLocked(members[0].asn.Owned(0)[0])
	members[0].mu.Unlock()
	_ = Converge(members[:2], 64) // cannot fully settle; drives the retries
	for _, m := range members[:2] {
		st := m.Stats()
		if st.PeersDead != 1 {
			t.Fatalf("member %d: %d dead peers after silencing shard 2, want 1", m.Index(), st.PeersDead)
		}
		if st.Tombstones != len(members[2].adj) {
			t.Fatalf("member %d: %d tombstones, want %d", m.Index(), st.Tombstones, len(members[2].adj))
		}
	}
	issued := members[0].Metrics().Counter("tombstones_issued") +
		members[1].Metrics().Counter("tombstones_issued")
	if issued == 0 {
		t.Fatal("no tombstones counted as issued")
	}

	// Member 2 speaks again: direct contact resurrects it, the survivors
	// re-offer their stores (its own obituaries included), and the
	// refutation re-announcements clear every tombstone.
	lt.Before = nil
	if err := Converge(members, 64); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		st := m.Stats()
		if st.Tombstones != 0 {
			t.Fatalf("member %d: %d tombstones survive the rejoin", m.Index(), st.Tombstones)
		}
		if st.PeersDead != 0 {
			t.Fatalf("member %d still counts %d dead peers", m.Index(), st.PeersDead)
		}
		if !st.Ready {
			t.Fatalf("member %d not ready after rejoin", m.Index())
		}
	}
	refuted := int64(0)
	for _, m := range members {
		refuted += m.Metrics().Counter("tombstones_refuted")
	}
	if refuted == 0 {
		t.Fatal("rejoin cleared tombstones without counting a refutation")
	}
}
