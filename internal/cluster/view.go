package cluster

import (
	"fmt"

	"klocal/internal/graph"
	"klocal/internal/route"
)

// boundView is one owned vertex's discovered G_k(u) with the routing
// algorithm bound to it. It is immutable once built; a store change
// (higher generation) invalidates it and the next request rebuilds.
type boundView struct {
	gen      int64
	view     *graph.Graph
	complete bool
	router   route.Func
}

// decide takes one forwarding step for the owned vertex u using only
// the algorithm bound to u's locally discovered view. This is the
// cluster's entire decision path: klocalvet seeds it by signature and
// verifies the closure never escapes to global topology.
func (bv *boundView) decide(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return bv.router(s, t, u, v)
}

// viewFor returns the current bound view for owned vertex u, rebuilding
// it outside the member lock when the link-state store has moved on.
func (m *Member) viewFor(u graph.Vertex) (*boundView, error) {
	if _, owned := m.adj[u]; !owned {
		return nil, fmt.Errorf("cluster: vertex %d not owned by shard %d", u, m.cfg.Index)
	}
	m.mu.Lock()
	gen := m.storeGen
	if bv := m.views[u]; bv != nil && bv.gen == gen {
		m.mu.Unlock()
		return bv, nil
	}
	// Snapshot the store for an unlocked build; records are immutable
	// once stored, so sharing pointers is safe.
	recs := make(map[graph.Vertex]*record, len(m.store))
	for v, rec := range m.store {
		recs[v] = rec
	}
	m.mu.Unlock()

	view, complete := assembleView(recs, u, m.cfg.K)
	bv := &boundView{gen: gen, view: view, complete: complete, router: m.cfg.Alg.Bind(view, m.cfg.K)}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.storeGen == gen {
		m.views[u] = bv
	}
	// A store that moved on mid-build just means this bound view serves
	// one request from a slightly stale (still locally-consistent)
	// snapshot; the next request rebuilds at the new generation.
	return bv, nil
}

// assembleView is netsim's buildView over the member's record store:
// the union of announced adjacencies — tombstoned origins and edges
// into them excluded — trimmed to paths of length at most k rooted at
// u. The second result reports completeness: no vertex sits on the
// distance-k horizon, so u's whole component is inside the view and
// absence of a destination proves a partition.
func assembleView(recs map[graph.Vertex]*record, u graph.Vertex, k int) (*graph.Graph, bool) {
	dead := make(map[graph.Vertex]bool)
	for origin, rec := range recs {
		if rec.tomb {
			dead[origin] = true
		}
	}
	b := graph.NewBuilder()
	b.AddVertex(u)
	for origin, rec := range recs {
		if rec.tomb {
			continue
		}
		for _, w := range rec.adj {
			if dead[w] {
				continue
			}
			b.AddEdge(origin, w)
		}
	}
	full := b.Build()
	trimmed := graph.NewBuilder()
	trimmed.AddVertex(u)
	dist := full.BFSBounded(u, k)
	complete := true
	for v, dv := range dist {
		if dv >= k {
			complete = false
			continue
		}
		full.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				trimmed.AddEdge(v, w)
			}
			return true
		})
	}
	return trimmed.Build(), complete
}

// View exposes the discovered k-neighbourhood of an owned vertex for
// tests and the differential property (nil when u is not owned).
func (m *Member) View(u graph.Vertex) *graph.Graph {
	bv, err := m.viewFor(u)
	if err != nil {
		return nil
	}
	return bv.view
}
