package cluster

import (
	"fmt"

	"klocal/internal/churn"
	"klocal/internal/graph"
	"klocal/internal/route"
)

// boundView is one owned vertex's discovered G_k(u) with the routing
// algorithm bound to it. It is immutable once built; a store change
// whose k-radius dirty set covers u (per-row generation in
// Member.viewGen) invalidates it and the next request rebuilds.
type boundView struct {
	gen      int64
	view     *graph.Graph
	complete bool
	router   route.Func
}

// decide takes one forwarding step for the owned vertex u using only
// the algorithm bound to u's locally discovered view. This is the
// cluster's entire decision path: klocalvet seeds it by signature and
// verifies the closure never escapes to global topology.
func (bv *boundView) decide(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return bv.router(s, t, u, v)
}

// viewFor returns the current bound view for owned vertex u, rebuilding
// it outside the member lock when the link-state store has moved on.
func (m *Member) viewFor(u graph.Vertex) (*boundView, error) {
	if _, owned := m.adj[u]; !owned {
		return nil, fmt.Errorf("cluster: vertex %d not owned by shard %d", u, m.cfg.Index)
	}
	m.mu.Lock()
	gen := m.storeGen
	// Per-row validity: the locality theorem says G_k(u) only changes
	// when the link-state delta touches B_k(u), so a view survives any
	// number of store generations as long as none of them dirtied u.
	if bv := m.views[u]; bv != nil && bv.gen >= m.viewGen[u] {
		m.mu.Unlock()
		return bv, nil
	}
	// Snapshot the store for an unlocked build; records are immutable
	// once stored, so sharing pointers is safe.
	recs := make(map[graph.Vertex]*record, len(m.store))
	for v, rec := range m.store {
		recs[v] = rec
	}
	m.mu.Unlock()

	view, complete := assembleView(recs, u, m.cfg.K)
	bv := &boundView{gen: gen, view: view, complete: complete, router: m.cfg.Alg.Bind(view, m.cfg.K)}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.storeGen == gen {
		m.views[u] = bv
	}
	// A store that moved on mid-build just means this bound view serves
	// one request from a slightly stale (still locally-consistent)
	// snapshot; the next request rebuilds at the new generation.
	return bv, nil
}

// assembleView is netsim's buildView over the member's record store:
// the union of announced adjacencies — tombstoned origins and edges
// into them excluded — trimmed to paths of length at most k rooted at
// u. The second result reports completeness: no vertex sits on the
// distance-k horizon, so u's whole component is inside the view and
// absence of a destination proves a partition.
func assembleView(recs map[graph.Vertex]*record, u graph.Vertex, k int) (*graph.Graph, bool) {
	full := unionGraph(recs).WithVertex(u)
	trimmed := graph.NewBuilder()
	trimmed.AddVertex(u)
	dist := full.BFSBounded(u, k)
	complete := true
	for v, dv := range dist {
		if dv >= k {
			complete = false
			continue
		}
		full.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				trimmed.AddEdge(v, w)
			}
			return true
		})
	}
	return trimmed.Build(), complete
}

// unionGraph materializes the tombstone-excluded union of all announced
// adjacencies: the member's whole picture of the topology. Tombstoned
// origins and edges into them are absent, so a peer withdrawal reads as
// vertex removal when two snapshots are diffed.
func unionGraph(recs map[graph.Vertex]*record) *graph.Graph {
	dead := make(map[graph.Vertex]bool)
	for origin, rec := range recs {
		if rec.tomb {
			dead[origin] = true
		}
	}
	b := graph.NewBuilder()
	for origin, rec := range recs {
		if rec.tomb {
			continue
		}
		b.AddVertex(origin)
		for _, w := range rec.adj {
			if dead[w] {
				continue
			}
			b.AddEdge(origin, w)
		}
	}
	return b.Build()
}

// captureStoreLocked snapshots the union graph before a batch of store
// mutations, or nil when no views are cached — with nothing to
// invalidate there is nothing to diff against, and views cached later
// are built from post-mutation snapshots anyway (viewFor only caches a
// build whose generation is still current).
func (m *Member) captureStoreLocked() *graph.Graph {
	if len(m.views) == 0 {
		return nil
	}
	return unionGraph(m.store)
}

// invalidateViewsLocked maps the store mutations since pre onto churn
// deltas and evicts exactly the owned rows inside the k-radius dirty
// set — the cluster face of the locality theorem: a link flap at {x, y}
// can only change G_k(u) for u within distance k of x or y, so every
// other member view survives the generation bump untouched. Call after
// m.storeGen has been advanced; pre == nil is a no-op.
func (m *Member) invalidateViewsLocked(pre *graph.Graph) {
	if pre == nil {
		return
	}
	post := unionGraph(m.store)
	deltas := churn.Diff(pre, post)
	if len(deltas) == 0 {
		return // e.g. a re-origination with identical adjacency
	}
	for _, v := range churn.DirtySet(pre, post, deltas, m.cfg.K) {
		if _, owned := m.adj[v]; !owned {
			continue
		}
		m.viewGen[v] = m.storeGen
		delete(m.views, v)
	}
}

// View exposes the discovered k-neighbourhood of an owned vertex for
// tests and the differential property (nil when u is not owned).
func (m *Member) View(u graph.Vertex) *graph.Graph {
	bv, err := m.viewFor(u)
	if err != nil {
		return nil
	}
	return bv.view
}
