package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"klocal/internal/graph"
)

// RouteRequest is the JSON body of POST /route on a cluster member —
// the same shape the single-process daemon accepts, so clients can
// point at any member unchanged (the cluster has exactly one algorithm,
// so Algo is accepted and ignored).
type RouteRequest struct {
	S     int    `json:"s"`
	T     int    `json:"t"`
	Algo  string `json:"algo,omitempty"`
	Trace bool   `json:"trace,omitempty"`
}

// Handler returns a member's HTTP surface:
//
//	POST /route           route one (s, t) pair from this entry member
//	POST /cluster/hello   membership heartbeat (peer-to-peer)
//	POST /cluster/lsa     link-state batch (peer-to-peer)
//	POST /cluster/forward hop handoff (peer-to-peer)
//	POST /cluster/reply   terminal reply to the entry member
//	GET  /cluster/status  protocol state (Stats)
//	GET  /metrics         member metrics (text; ?format=json)
//	GET  /healthz         process liveness
//	GET  /readyz          503 until discovery covers the vertex space
func (m *Member) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", m.handleRouteHTTP)
	mux.HandleFunc("POST /cluster/hello", m.handleHelloHTTP)
	mux.HandleFunc("POST /cluster/lsa", m.handleLSAHTTP)
	mux.HandleFunc("POST /cluster/forward", m.handleForwardHTTP)
	mux.HandleFunc("POST /cluster/reply", m.handleReplyHTTP)
	mux.HandleFunc("GET /cluster/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
	mux.HandleFunc("GET /metrics", m.handleMetricsHTTP)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !m.Ready() {
			http.Error(w, "discovering", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// replyStatus maps a RouteReply to its HTTP status: delivered walks are
// 200, malformed requests 400, and every typed routing failure is a 503
// whose body still carries the partial walk and trace.
func replyStatus(rep *RouteReply) int {
	switch {
	case rep.Delivered:
		return http.StatusOK
	case rep.ErrKind == "unknown_vertex":
		return http.StatusBadRequest
	default:
		return http.StatusServiceUnavailable
	}
}

func (m *Member) handleRouteHTTP(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	rep, err := m.Route(r.Context(), graph.Vertex(req.S), graph.Vertex(req.T), req.Trace)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	writeJSON(w, replyStatus(rep), rep)
}

func (m *Member) handleHelloHTTP(w http.ResponseWriter, r *http.Request) {
	var msg HelloMsg
	if !decodeInto(w, r, &msg) {
		return
	}
	writeJSON(w, http.StatusOK, m.handleHello(&msg))
}

func (m *Member) handleLSAHTTP(w http.ResponseWriter, r *http.Request) {
	var batch LSABatch
	if !decodeInto(w, r, &batch) {
		return
	}
	writeJSON(w, http.StatusOK, m.handleLSAs(&batch))
}

func (m *Member) handleForwardHTTP(w http.ResponseWriter, r *http.Request) {
	var msg WireMessage
	if !decodeInto(w, r, &msg) {
		return
	}
	if err := m.acceptForward(&msg); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (m *Member) handleReplyHTTP(w http.ResponseWriter, r *http.Request) {
	var rep RouteReply
	if !decodeInto(w, r, &rep) {
		return
	}
	m.deliverReply(&rep)
	w.WriteHeader(http.StatusAccepted)
}

func (m *Member) handleMetricsHTTP(w http.ResponseWriter, r *http.Request) {
	rep := m.Metrics()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rep.WriteText(w)
}
