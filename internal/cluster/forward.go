package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"klocal/internal/graph"
)

// Typed failure modes of the forwarding path. RouteReply.ErrKind
// carries their wire names so clients (and the e2e assertions) can
// distinguish them without string matching.
var (
	// ErrHopBudget: the walk exhausted its hop budget.
	ErrHopBudget = errors.New("cluster: hop budget exhausted")
	// ErrPeerDeadline: a shard handoff did not complete within the
	// per-hop deadline (the peer is reachable but stalled).
	ErrPeerDeadline = errors.New("cluster: per-hop deadline expired at shard handoff")
	// ErrPeerDown: the next shard is dead or refusing connections.
	ErrPeerDown = errors.New("cluster: next shard is down")
	// ErrPeerUnknown: the owner shard has not been discovered yet.
	ErrPeerUnknown = errors.New("cluster: owner shard not yet discovered")
	// ErrNotReady: k-neighbourhood discovery has not covered the vertex
	// space yet.
	ErrNotReady = errors.New("cluster: discovery incomplete")
	// ErrPartitioned: a complete view proves the destination is not in
	// this component of the discovered topology.
	ErrPartitioned = errors.New("cluster: destination unreachable in the discovered topology")
	// ErrRequestTimeout: the entry member gave up waiting for a reply
	// (the message was likely lost to a crashing shard).
	ErrRequestTimeout = errors.New("cluster: request timed out waiting for the walk to resolve")
	// ErrUnknownVertex: an endpoint outside the addressed vertex space.
	ErrUnknownVertex = errors.New("cluster: vertex outside the served graph")
	// ErrStopped: this member is shutting down.
	ErrStopped = errors.New("cluster: member stopping")
)

// errKindOf maps a forwarding error to its wire name.
func errKindOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrHopBudget):
		return "hop_budget"
	case errors.Is(err, ErrPeerDeadline):
		return "peer_deadline"
	case errors.Is(err, ErrPeerDown):
		return "peer_down"
	case errors.Is(err, ErrPeerUnknown):
		return "peer_unknown"
	case errors.Is(err, ErrNotReady):
		return "not_ready"
	case errors.Is(err, ErrPartitioned):
		return "partitioned"
	case errors.Is(err, ErrRequestTimeout):
		return "timeout"
	case errors.Is(err, ErrUnknownVertex):
		return "unknown_vertex"
	case errors.Is(err, ErrStopped):
		return "stopped"
	default:
		return "routing"
	}
}

// Step is one annotated hop of a cluster walk: which vertex decided,
// and which member it lived on — the distributed analogue of trace.Hop
// (no global distances here; no member can compute them locally).
type Step struct {
	Index  int          `json:"i"`
	Node   graph.Vertex `json:"node"`
	Member int          `json:"member"`
}

// WireMessage is the in-flight routing request handed shard to shard.
// The walk state travels with the message; members keep nothing.
type WireMessage struct {
	ID         uint64         `json:"id"`
	EntryAddr  string         `json:"entry_addr"`
	EntryIndex int            `json:"entry_index"`
	S          graph.Vertex   `json:"s"`
	T          graph.Vertex   `json:"t"`
	Prev       graph.Vertex   `json:"prev"`
	Route      []graph.Vertex `json:"route"`
	Budget     int            `json:"budget"`
	Crossings  int            `json:"crossings"`
	Trace      bool           `json:"trace,omitempty"`
	Steps      []Step         `json:"steps,omitempty"`
}

// RouteReply is the terminal answer for one routing request, built by
// whichever member the walk ended on and returned to the entry member.
// On failure it still carries the partial walk (and per-member trace
// when requested) up to the point the typed error fired.
type RouteReply struct {
	ID        uint64         `json:"id"`
	Member    int            `json:"member"`
	Algo      string         `json:"algo"`
	K         int            `json:"k"`
	S         graph.Vertex   `json:"s"`
	T         graph.Vertex   `json:"t"`
	Delivered bool           `json:"delivered"`
	Hops      int            `json:"hops"`
	Crossings int            `json:"crossings"`
	Route     []graph.Vertex `json:"route,omitempty"`
	Err       string         `json:"err,omitempty"`
	ErrKind   string         `json:"err_kind,omitempty"`
	Steps     []Step         `json:"steps,omitempty"`
	LatencyNS int64          `json:"latency_ns"`
}

// clone deep-copies the walk so sender and receiver never share it
// (the HTTP path gets this isolation from JSON for free).
func (w *WireMessage) clone() *WireMessage {
	cp := *w
	cp.Route = append([]graph.Vertex(nil), w.Route...)
	cp.Steps = append([]Step(nil), w.Steps...)
	return &cp
}

// replyFor builds the terminal reply for msg.
func (m *Member) replyFor(msg *WireMessage, delivered bool, err error) *RouteReply {
	rep := &RouteReply{
		ID:        msg.ID,
		Member:    m.cfg.Index,
		Algo:      m.cfg.Alg.Name,
		K:         m.cfg.K,
		S:         msg.S,
		T:         msg.T,
		Delivered: delivered,
		Hops:      len(msg.Route) - 1,
		Crossings: msg.Crossings,
		Route:     msg.Route,
		Steps:     msg.Steps,
	}
	if err != nil {
		rep.Err = err.Error()
		rep.ErrKind = errKindOf(err)
	}
	return rep
}

// finish terminates the walk: deliver the reply locally when this
// member is the entry, otherwise send it back to the entry member.
func (m *Member) finish(msg *WireMessage, delivered bool, err error) {
	rep := m.replyFor(msg, delivered, err)
	if msg.EntryIndex == m.cfg.Index {
		m.deliverReply(rep)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PeerDeadline)
	defer cancel()
	if rerr := m.tr.Reply(ctx, msg.EntryAddr, rep); rerr != nil {
		// The entry's request timeout is the backstop for a lost reply.
		m.met.Count("replies_lost", 1)
		return
	}
	m.met.Count("replies_sent", 1)
}

// process advances the walk while its head vertex is owned here, then
// either terminates it (reply to entry) or hands it to the next shard.
func (m *Member) process(msg *WireMessage) {
	for {
		u := msg.Route[len(msg.Route)-1]
		if msg.Trace {
			msg.Steps = append(msg.Steps, Step{Index: len(msg.Steps), Node: u, Member: m.cfg.Index})
		}
		if u == msg.T {
			m.finish(msg, true, nil)
			return
		}
		// Fail fast once the destination's shard is known-dead instead
		// of walking the full budget toward a withdrawn region.
		if ownerT, ok := m.asn.Owner(msg.T); ok && ownerT != m.cfg.Index {
			if _, dead, known := m.peerAddr(ownerT); known && dead {
				m.finish(msg, false, fmt.Errorf("%w: destination shard %d", ErrPeerDown, ownerT))
				return
			}
		}
		if msg.Budget <= 0 {
			m.finish(msg, false, fmt.Errorf("%w after %d hops", ErrHopBudget, len(msg.Route)-1))
			return
		}
		bv, err := m.viewFor(u)
		if err != nil {
			m.finish(msg, false, err)
			return
		}
		if bv.complete && !bv.view.HasVertex(msg.T) {
			m.finish(msg, false, fmt.Errorf("%w: %d not in the complete view of %d", ErrPartitioned, msg.T, u))
			return
		}
		next, err := bv.decide(msg.S, msg.T, u, msg.Prev)
		if err != nil {
			m.finish(msg, false, err)
			return
		}
		if !m.isOwnNeighbor(u, next) {
			m.finish(msg, false, fmt.Errorf("cluster: algorithm chose %d, not a neighbour of %d", next, u))
			return
		}
		msg.Prev = u
		msg.Route = append(msg.Route, next)
		msg.Budget--
		m.met.Count("forwards", 1)
		owner, ok := m.asn.Owner(next)
		if !ok {
			m.finish(msg, false, fmt.Errorf("%w: %d", ErrUnknownVertex, next))
			return
		}
		if owner == m.cfg.Index {
			continue
		}
		msg.Crossings++
		m.met.Count("crossings", 1)
		if err := m.handoff(owner, msg); err != nil {
			m.finish(msg, false, err)
			return
		}
		return // the next shard owns the walk now
	}
}

// isOwnNeighbor checks the algorithm's step against the member's
// a-priori adjacency — the one structural fact it holds about u.
func (m *Member) isOwnNeighbor(u, w graph.Vertex) bool {
	for _, x := range m.adj[u] {
		if x == w {
			return true
		}
	}
	return false
}

// handoff transfers the walk to the owner shard with a per-attempt
// deadline and bounded retry-with-backoff on transient errors.
func (m *Member) handoff(owner int, msg *WireMessage) error {
	addr, dead, known := m.peerAddr(owner)
	if !known {
		return fmt.Errorf("%w: shard %d", ErrPeerUnknown, owner)
	}
	if dead {
		return fmt.Errorf("%w: shard %d", ErrPeerDown, owner)
	}
	var lastErr error
	for att := 1; att <= m.cfg.ForwardAttempts; att++ {
		if att > 1 {
			m.met.Count("forward_retries", 1)
			d := m.cfg.RetryBase * time.Duration(m.plan.Backoff(att-1))
			select {
			case <-m.stop:
				return ErrStopped
			case <-time.After(d):
			}
			// The membership layer may have condemned the peer while we
			// backed off; inherit its verdict instead of retrying.
			if _, nowDead, _ := m.peerAddr(owner); nowDead {
				return fmt.Errorf("%w: shard %d", ErrPeerDown, owner)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PeerDeadline)
		err := m.tr.Forward(ctx, addr, msg)
		cancel()
		if err == nil {
			return nil
		}
		if errors.Is(err, context.DeadlineExceeded) {
			lastErr = fmt.Errorf("%w: shard %d attempt %d", ErrPeerDeadline, owner, att)
		} else {
			lastErr = fmt.Errorf("%w: shard %d attempt %d: %v", ErrPeerDown, owner, att, err)
		}
	}
	return lastErr
}

// acceptForward admits an inbound walk whose head vertex we own and
// processes it asynchronously; the sender's positive response is only
// "accepted", never the outcome (that goes to the entry member).
func (m *Member) acceptForward(msg *WireMessage) error {
	if len(msg.Route) == 0 {
		return fmt.Errorf("cluster: empty walk")
	}
	head := msg.Route[len(msg.Route)-1]
	if _, owned := m.adj[head]; !owned {
		return fmt.Errorf("cluster: vertex %d not owned by shard %d", head, m.cfg.Index)
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return ErrStopped
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		m.process(msg)
	}()
	return nil
}

// deliverReply resolves the waiter for an inbound terminal reply.
func (m *Member) deliverReply(rep *RouteReply) {
	m.waitMu.Lock()
	ch, ok := m.waiters[rep.ID]
	if ok {
		delete(m.waiters, rep.ID)
	}
	m.waitMu.Unlock()
	if ok {
		ch <- rep // buffered; never blocks
	}
}

// Route runs one request end to end from this member: admit, forward
// hop by hop across the cluster, and wait for the terminal reply. The
// returned error is non-nil only for malformed requests; routing
// failures come back typed inside the reply.
func (m *Member) Route(ctx context.Context, s, t graph.Vertex, withTrace bool) (*RouteReply, error) {
	start := time.Now()
	finish := func(rep *RouteReply) *RouteReply {
		rep.LatencyNS = time.Since(start).Nanoseconds()
		m.met.Count("requests", 1)
		if rep.Delivered {
			m.met.Count("delivered", 1)
			m.met.Observe("hops", int64(rep.Hops))
			m.met.Observe("crossings_per_req", int64(rep.Crossings))
		} else {
			m.met.Count("failed", 1)
			if rep.ErrKind != "" {
				m.met.Count("failed_"+rep.ErrKind, 1)
			}
		}
		m.met.Observe("latency_ns", rep.LatencyNS)
		return rep
	}
	msg := &WireMessage{
		EntryAddr:  m.cfg.SelfAddr,
		EntryIndex: m.cfg.Index,
		S:          s,
		T:          t,
		Prev:       graph.NoVertex,
		Route:      []graph.Vertex{s},
		Budget:     m.cfg.HopBudget,
		Trace:      withTrace,
	}
	if _, ok := m.asn.Owner(s); !ok {
		return finish(m.replyFor(msg, false, fmt.Errorf("%w: s=%d", ErrUnknownVertex, s))), nil
	}
	if _, ok := m.asn.Owner(t); !ok {
		return finish(m.replyFor(msg, false, fmt.Errorf("%w: t=%d", ErrUnknownVertex, t))), nil
	}
	if m.isStopped() {
		return finish(m.replyFor(msg, false, ErrStopped)), nil
	}
	if !m.Ready() {
		return finish(m.replyFor(msg, false, ErrNotReady)), nil
	}

	msg.ID = m.nextID.Add(1)
	ch := make(chan *RouteReply, 1)
	m.waitMu.Lock()
	m.waiters[msg.ID] = ch
	m.waitMu.Unlock()

	owner, _ := m.asn.Owner(s)
	if owner == m.cfg.Index {
		// The walker mutates its copy; the entry keeps msg pristine for
		// the timeout reply.
		if err := m.acceptForward(msg.clone()); err != nil {
			m.dropWaiter(msg.ID)
			return finish(m.replyFor(msg, false, err)), nil
		}
	} else {
		msg.Crossings++
		m.met.Count("crossings", 1)
		if err := m.handoff(owner, msg); err != nil {
			m.dropWaiter(msg.ID)
			return finish(m.replyFor(msg, false, err)), nil
		}
	}

	timer := time.NewTimer(m.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		return finish(rep), nil
	case <-ctx.Done():
		m.dropWaiter(msg.ID)
		return finish(m.replyFor(msg, false, fmt.Errorf("%w: %v", ErrRequestTimeout, ctx.Err()))), nil
	case <-timer.C:
		m.dropWaiter(msg.ID)
		return finish(m.replyFor(msg, false, ErrRequestTimeout)), nil
	case <-m.stop:
		m.dropWaiter(msg.ID)
		return finish(m.replyFor(msg, false, ErrStopped)), nil
	}
}

func (m *Member) dropWaiter(id uint64) {
	m.waitMu.Lock()
	delete(m.waiters, id)
	m.waitMu.Unlock()
}
