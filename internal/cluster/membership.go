package cluster

import (
	"context"
	"sort"
	"time"

	"klocal/internal/graph"
)

// PeerInfo is one row of the gossiped membership table.
type PeerInfo struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	Inc   int64  `json:"inc"`
	Dead  bool   `json:"dead,omitempty"`
}

// HelloMsg is the heartbeat: the sender's own row plus its full
// membership table. The response carries the receiver's table back, so
// one round trip anti-entropies both directions.
type HelloMsg struct {
	From  PeerInfo   `json:"from"`
	Peers []PeerInfo `json:"peers,omitempty"`
}

// peerState is the member's view of one other shard.
type peerState struct {
	index    int
	addr     string
	inc      int64
	dead     bool
	lastSeen time.Time
	// pending holds the reliable transfers owed to this peer, keyed by
	// origin vertex (a newer announcement replaces the queued one).
	pending map[graph.Vertex]*xfer
}

// selfInfoLocked is this member's own membership row.
func (m *Member) selfInfoLocked() PeerInfo {
	return PeerInfo{Index: m.cfg.Index, Addr: m.cfg.SelfAddr, Inc: m.inc}
}

// tableLocked snapshots the membership table (self included), sorted by
// shard index for deterministic gossip.
func (m *Member) tableLocked() []PeerInfo {
	out := make([]PeerInfo, 0, len(m.peers)+1)
	out = append(out, m.selfInfoLocked())
	for _, p := range m.peers {
		out = append(out, PeerInfo{Index: p.index, Addr: p.addr, Inc: p.inc, Dead: p.dead})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// mergeDirectLocked folds in first-hand evidence of a peer being alive:
// we just completed an exchange with it. Direct contact resurrects a
// dead-marked peer regardless of incarnation (netsim's rule: hearing
// from the condemned refutes the obituary).
func (m *Member) mergeDirectLocked(info PeerInfo, now time.Time) {
	if info.Index == m.cfg.Index || info.Index < 0 || info.Index >= m.asn.shards {
		return
	}
	p := m.peers[info.Index]
	if p == nil {
		p = &peerState{index: info.Index, addr: info.Addr, inc: info.Inc, lastSeen: now,
			pending: make(map[graph.Vertex]*xfer)}
		m.peers[info.Index] = p
		m.pruneSeedLocked(info.Addr)
		m.offerStoreLocked(p)
		return
	}
	if info.Inc >= p.inc {
		p.inc = info.Inc
		if info.Addr != "" {
			p.addr = info.Addr
		}
	}
	p.lastSeen = now
	if p.dead {
		m.resurrectLocked(p)
	}
}

// mergeGossipLocked folds in a second-hand membership row. Higher
// incarnation wins; at equal incarnation a death claim wins (it can
// only be refuted by the accused bumping its incarnation). A row about
// ourselves claiming we are dead triggers self-defense: bump the
// incarnation past the claim and re-announce everything we own.
func (m *Member) mergeGossipLocked(info PeerInfo, now time.Time) {
	if info.Index < 0 || info.Index >= m.asn.shards {
		return
	}
	if info.Index == m.cfg.Index {
		if info.Dead && info.Inc >= m.inc {
			m.inc = info.Inc + 1
			m.met.Count("tombstones_refuted", 1)
			// Re-announcing identical adjacencies diffs to zero deltas:
			// self-defense bumps sequence numbers without evicting views.
			pre := m.captureStoreLocked()
			for _, v := range m.asn.Owned(m.cfg.Index) {
				m.reOriginateLocked(v)
			}
			m.invalidateViewsLocked(pre)
		}
		return
	}
	p := m.peers[info.Index]
	if p == nil {
		p = &peerState{index: info.Index, addr: info.Addr, inc: info.Inc, dead: info.Dead,
			lastSeen: now, pending: make(map[graph.Vertex]*xfer)}
		m.peers[info.Index] = p
		m.pruneSeedLocked(info.Addr)
		if p.dead {
			m.tombstonePeerLocked(p)
		} else {
			m.offerStoreLocked(p)
		}
		return
	}
	switch {
	case info.Inc > p.inc:
		p.inc = info.Inc
		if info.Addr != "" {
			p.addr = info.Addr
		}
		if info.Dead && !p.dead {
			m.markDeadLocked(p, false)
		} else if !info.Dead && p.dead {
			m.resurrectLocked(p)
		}
	case info.Inc == p.inc && info.Dead && !p.dead:
		m.markDeadLocked(p, false)
	}
}

// pruneSeedLocked drops a bootstrap address once it resolved to a peer.
func (m *Member) pruneSeedLocked(addr string) {
	if addr == "" {
		return
	}
	for i, s := range m.seeds {
		if s == addr {
			m.seeds = append(m.seeds[:i], m.seeds[i+1:]...)
			return
		}
	}
}

// markDeadLocked declares a peer dead: drop its transfer queue,
// tombstone every vertex it owns, and flood the tombstones. declared
// distinguishes first-hand detection (we count it and it feeds our own
// gossip) from adopting someone else's claim.
func (m *Member) markDeadLocked(p *peerState, declared bool) {
	if p.dead {
		return
	}
	p.dead = true
	p.pending = make(map[graph.Vertex]*xfer)
	if declared {
		m.met.Count("deaths_declared", 1)
	}
	m.tombstonePeerLocked(p)
}

// tombstonePeerLocked writes tombstones for every vertex the dead peer
// owns and floods them, so views across the cluster withdraw the shard.
func (m *Member) tombstonePeerLocked(p *peerState) {
	pre := m.captureStoreLocked()
	changed := false
	for _, v := range m.asn.Owned(p.index) {
		rec := m.store[v]
		if rec != nil && rec.tomb {
			continue
		}
		var seq uint64
		if rec != nil {
			seq = rec.seq
		}
		nr := &record{seq: seq, tomb: true}
		m.store[v] = nr
		m.met.Count("tombstones_issued", 1)
		m.floodLocked(v, nr, p.index)
		changed = true
	}
	if changed {
		m.storeGen++
		m.invalidateViewsLocked(pre)
	}
	m.checkReadyLocked()
}

// resurrectLocked marks a dead peer alive again and re-offers it our
// whole store (tombstones included: sending a node its own obituary is
// what triggers the refutation re-announcement).
func (m *Member) resurrectLocked(p *peerState) {
	if !p.dead {
		return
	}
	p.dead = false
	m.offerStoreLocked(p)
}

// offerStoreLocked anti-entropies the full link-state store to a peer
// that just (re)appeared.
func (m *Member) offerStoreLocked(p *peerState) {
	for v, rec := range m.store {
		m.enqueueLocked(p, wireLSA(v, rec))
	}
}

// helloPass runs one heartbeat round: HELLO every known peer (dead ones
// included — probing the condemned is the rejoin path when the address
// is stable) and every unresolved seed, merge what comes back, then
// sweep for peers that have been silent past the deadline.
func (m *Member) helloPass() {
	type target struct{ addr string }
	m.mu.Lock()
	self := m.selfInfoLocked()
	table := m.tableLocked()
	var targets []target
	for _, row := range table {
		if row.Index != m.cfg.Index && row.Addr != "" {
			targets = append(targets, target{addr: row.Addr})
		}
	}
	for _, s := range m.seeds {
		targets = append(targets, target{addr: s})
	}
	m.mu.Unlock()

	req := &HelloMsg{From: self, Peers: table}
	for _, tg := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PeerDeadline)
		resp, err := m.tr.Hello(ctx, tg.addr, req)
		cancel()
		m.met.Count("hello_sent", 1)
		if err != nil {
			m.met.Count("hello_timeouts", 1)
			continue
		}
		now := time.Now()
		m.mu.Lock()
		from := resp.From
		if from.Addr == "" {
			from.Addr = tg.addr
		}
		m.mergeDirectLocked(from, now)
		for _, info := range resp.Peers {
			m.mergeGossipLocked(info, now)
		}
		m.mu.Unlock()
	}

	// Failure detection by silence: no successful exchange within
	// DeadAfter condemns the peer.
	now := time.Now()
	m.mu.Lock()
	var silent []*peerState
	for _, p := range m.peers {
		if !p.dead && now.Sub(p.lastSeen) > m.cfg.DeadAfter {
			silent = append(silent, p)
		}
	}
	sort.Slice(silent, func(i, j int) bool { return silent[i].index < silent[j].index })
	for _, p := range silent {
		m.markDeadLocked(p, true)
	}
	m.mu.Unlock()
}

// handleHello serves an inbound heartbeat: merge the sender (direct
// evidence) and its gossip, answer with our table.
func (m *Member) handleHello(req *HelloMsg) *HelloMsg {
	m.met.Count("hello_recv", 1)
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mergeDirectLocked(req.From, now)
	for _, info := range req.Peers {
		m.mergeGossipLocked(info, now)
	}
	return &HelloMsg{From: m.selfInfoLocked(), Peers: m.tableLocked()}
}

// peerAddr resolves a shard index to (addr, dead, known).
func (m *Member) peerAddr(idx int) (string, bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[idx]
	if p == nil || p.addr == "" {
		return "", false, false
	}
	return p.addr, p.dead, true
}
