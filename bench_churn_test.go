package klocal_test

import (
	"testing"

	"klocal"
)

// Benchmarks for the churn path (internal/churn, DESIGN.md §15): what a
// single edge flap costs under k-radius invalidation versus rebuilding
// the view cache from scratch. Named BenchmarkEngine* so `make bench`
// folds the comparison into BENCH_engine.json.

const (
	churnGridSide = 100 // n = 10^4 vertices
	churnK        = 3
)

// churnFlap returns the 100x100 grid and the two deltas that flap a
// central edge: each remove is undone by the following add, so the
// topology is valid on every iteration and the dirty set stays the
// k-ball around the same two endpoints.
func churnFlap(b *testing.B) (*klocal.Graph, [2]klocal.TopologyDelta) {
	b.Helper()
	g := klocal.Grid(churnGridSide, churnGridSide)
	u := klocal.Vertex(churnGridSide/2*churnGridSide + churnGridSide/2)
	return g, [2]klocal.TopologyDelta{
		{Op: klocal.RemoveEdge, U: u, V: u + 1},
		{Op: klocal.AddEdge, U: u, V: u + 1},
	}
}

// BenchmarkEngineDeltaApply measures the copy-on-write delta itself:
// rebuilding the immutable graph plus the bounded BFS that computes the
// dirty set. dirtyViews/op is the invalidation bound the locality
// theorem promises — O(|B_k(endpoints)|), a constant ~50 views here,
// independent of the 10^4-vertex topology.
func BenchmarkEngineDeltaApply(b *testing.B) {
	g, flap := churnFlap(b)
	b.ReportAllocs()
	cur, dirtyTotal := g, 0
	for i := 0; i < b.N; i++ {
		post, dirty, err := klocal.ApplyDelta(cur, flap[i%2], churnK)
		if err != nil {
			b.Fatal(err)
		}
		dirtyTotal += len(dirty)
		cur = post
	}
	b.ReportMetric(float64(dirtyTotal)/float64(b.N), "dirtyViews/op")
	b.ReportMetric(float64(g.N()), "n")
}

// BenchmarkEngineDeltaIncremental is the PATCH /graph fast path: apply
// the delta, derive a cache that adopts every surviving view, and pay
// the recompute debt for exactly the dirty vertices (steady traffic
// would force those lazily; computing them here makes the comparison
// with the full rebuild honest). Only |B_k| of the 10^4 views are
// rebuilt per flap.
func BenchmarkEngineDeltaIncremental(b *testing.B) {
	g, flap := churnFlap(b)
	pol := klocal.Algorithm2().Policy
	p := klocal.NewPreprocessorOpts(g, churnK, pol, klocal.CacheOptions{})
	p.Prewarm(0)
	cur, dirtyTotal := g, 0
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		post, dirty, err := klocal.ApplyDelta(cur, flap[i%2], churnK)
		if err != nil {
			b.Fatal(err)
		}
		np := p.Derive(post, dirty)
		for _, u := range dirty {
			np.At(u)
		}
		dirtyTotal += len(dirty)
		cur, p = post, np
	}
	b.ReportMetric(float64(dirtyTotal)/float64(b.N), "dirtyViews/op")
}

// BenchmarkEngineDeltaFullRebuild is the same flap served the naive
// way: throw the cache away and recompute all n views on the new
// topology. The ratio to BenchmarkEngineDeltaIncremental is the
// headline churn number (≥10x here; the gap widens with n since the
// incremental cost is n-independent).
func BenchmarkEngineDeltaFullRebuild(b *testing.B) {
	g, flap := churnFlap(b)
	pol := klocal.Algorithm2().Policy
	cur := g
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		post, _, err := klocal.ApplyDelta(cur, flap[i%2], churnK)
		if err != nil {
			b.Fatal(err)
		}
		np := klocal.NewPreprocessorOpts(post, churnK, pol, klocal.CacheOptions{})
		np.Prewarm(0)
		cur = post
	}
	b.ReportMetric(float64(g.N()), "viewsRebuilt/op")
}
