package klocal_test

import (
	"io"
	"testing"

	"klocal"
)

// Benchmarks regenerating the paper's tables and figures. Each bench runs
// the full experiment behind the corresponding table/figure; custom
// metrics report the headline numbers so `go test -bench .` doubles as a
// reproduction report.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := klocal.NewRand(1)
		res, err := klocal.Table1(rng, 23, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if !row.Positive.AllDelivered() || row.StrategiesDefeated != row.StrategiesTotal {
				b.Fatalf("Table 1 row %q does not reproduce", row.Mode)
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	var worst1, worst2, worst3 float64
	for i := 0; i < b.N; i++ {
		rng := klocal.NewRand(2)
		res, err := klocal.Table2(rng, 24, 2)
		if err != nil {
			b.Fatal(err)
		}
		worst1 = res.Rows[0].WorkloadWorst
		worst2 = res.Rows[2].WorkloadWorst
		worst3 = res.Rows[3].WorkloadWorst
	}
	b.ReportMetric(worst1, "worstDilation/alg1")
	b.ReportMetric(worst2, "worstDilation/alg2")
	b.ReportMetric(worst3, "worstDilation/alg3")
}

func BenchmarkTable2LowerBound(b *testing.B) {
	// Theorem 4 / Figure 6: the adversary path where the bound 2n−3k−1 is
	// attained exactly.
	n := 64
	k := klocal.MinK1(n)
	inst, err := klocal.DilationPath(n, k)
	if err != nil {
		b.Fatal(err)
	}
	alg := klocal.Algorithm1()
	b.ResetTimer()
	var dil float64
	for i := 0; i < b.N; i++ {
		res := klocal.Route(alg, inst.G, k, inst.S, inst.T)
		if res.Len() != 2*n-3*k-1 {
			b.Fatalf("route %d != bound %d", res.Len(), 2*n-3*k-1)
		}
		dil = res.Dilation()
	}
	b.ReportMetric(dil, "dilation")
	b.ReportMetric(klocal.LowerBoundDilation(n, k), "S(k)")
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := klocal.Table3(31)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Replay.EveryStrategyDefeated() {
			b.Fatal("Table 3 does not reproduce")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := klocal.Table4(29)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Replay.EveryStrategyDefeated() {
			b.Fatal("Table 4 does not reproduce")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := klocal.Fig7(12, 5, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome == klocal.Delivered || res.SawT || !res.TreeDelivered {
			b.Fatal("Figure 7 does not reproduce")
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	var dil float64
	for i := 0; i < b.N; i++ {
		res, err := klocal.Fig13([]int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.RouteLen != p.PaperLen {
				b.Fatalf("Fig 13 route %d != 2n-k-3 = %d", p.RouteLen, p.PaperLen)
			}
		}
		dil = res.Points[len(res.Points)-1].Dilation
	}
	b.ReportMetric(dil, "dilation(n=64)")
}

func BenchmarkFig17(b *testing.B) {
	var dil float64
	for i := 0; i < b.N; i++ {
		res, err := klocal.Fig17([]int{7, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range res.Points {
			if p.RouteLen != p.ExpectLen {
				b.Fatalf("Fig 17 route %d != n+2k-6-2δ* = %d", p.RouteLen, p.ExpectLen)
			}
			if a1 := res.Alg1Points[j]; a1.RouteLen != a1.PaperLen {
				b.Fatalf("Fig 17 companion route %d != n+2k = %d", a1.RouteLen, a1.PaperLen)
			}
		}
		dil = res.Points[len(res.Points)-1].Dilation
	}
	b.ReportMetric(dil, "dilation(n=64)")
}

func BenchmarkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := klocal.NewRand(3)
		res := klocal.Sweep(rng, 12, 1, 6)
		var sink io.Writer = io.Discard
		res.Render(sink)
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblationAlg1VsAlg1B(b *testing.B) {
	// How much route length does the U2 pre-emption save on its target
	// family? (Lemma 14 guarantees it never costs anything.)
	k := 16
	f, err := klocal.NewFig17(4*k, k)
	if err != nil {
		b.Fatal(err)
	}
	a1 := klocal.Algorithm1()
	a1b := klocal.Algorithm1B()
	b.ResetTimer()
	var l1, l1b int
	for i := 0; i < b.N; i++ {
		l1 = klocal.Route(a1, f.G, k, f.S, f.T).Len()
		l1b = klocal.Route(a1b, f.G, k, f.S, f.T).Len()
	}
	b.ReportMetric(float64(l1), "routeLen/alg1")
	b.ReportMetric(float64(l1b), "routeLen/alg1b")
	b.ReportMetric(float64(l1-l1b), "savedEdges")
}

func BenchmarkAblationPreprocessScope(b *testing.B) {
	// Cost of the dormant-edge classification versus the raw
	// neighbourhood extraction it extends.
	g := klocal.RandomConnected(klocal.NewRand(4), 64, 0.08)
	k := klocal.MinK1(64)
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			klocal.ExtractNeighborhood(g, 0, k)
		}
	})
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			klocal.Preprocess(g, 0, k)
		}
	})
}

// Micro-benchmarks of the hot paths.

func BenchmarkRouteStepAlgorithm1(b *testing.B) {
	g := klocal.RandomConnected(klocal.NewRand(5), 48, 0.08)
	alg := klocal.Algorithm1()
	k := alg.MinK(48)
	f := alg.Bind(g, k) // preprocessing is cached across steps
	vs := g.Vertices()
	// Warm the cache so the bench measures the per-step decision.
	for _, v := range vs {
		if v != vs[0] {
			if _, err := f(vs[0], vs[0], v, klocal.NoVertex); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := vs[1+i%(len(vs)-1)]
		if _, err := f(vs[0], vs[0], u, klocal.NoVertex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndRoute(b *testing.B) {
	g := klocal.RandomConnected(klocal.NewRand(6), 40, 0.1)
	for _, alg := range []klocal.Algorithm{
		klocal.Algorithm1(), klocal.Algorithm1B(), klocal.Algorithm2(), klocal.Algorithm3(),
	} {
		b.Run(alg.Name, func(b *testing.B) {
			k := alg.MinK(40)
			vs := g.Vertices()
			for i := 0; i < b.N; i++ {
				s := vs[i%len(vs)]
				t := vs[(i+17)%len(vs)]
				if s == t {
					continue
				}
				if res := klocal.Route(alg, g, k, s, t); res.Outcome != klocal.Delivered {
					b.Fatalf("%s failed: %v", alg.Name, res.Outcome)
				}
			}
		})
	}
}

func BenchmarkDiscovery(b *testing.B) {
	g := klocal.RandomConnected(klocal.NewRand(7), 40, 0.08)
	alg := klocal.Algorithm3()
	k := alg.MinK(40)
	for i := 0; i < b.N; i++ {
		nw := klocal.NewNetwork(g, k, alg)
		nw.Start()
		if err := nw.Discover(); err != nil {
			b.Fatal(err)
		}
		nw.Stop()
	}
}
