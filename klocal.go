// Package klocal is a library for k-local routing on connected undirected
// graphs, reproducing Bose, Carmi and Durocher, "Bounding the Locality of
// Distributed Routing Algorithms" (PODC 2009).
//
// A k-local routing algorithm makes distributed forwarding decisions
// using only the destination, optionally the origin (origin-aware) and
// incoming port (predecessor-aware), and the k-neighbourhood G_k(u) of
// the current node. The paper's tight feasibility thresholds are:
//
//	T(n)                  origin-aware   origin-oblivious
//	predecessor-aware     n/4            n/3
//	predecessor-oblivious n/2            n/2
//
// This package exposes the four matching algorithms (Algorithm1,
// Algorithm1B, Algorithm2, Algorithm3), the graph substrate and
// generators, a single-message simulator, a concurrent message-passing
// network simulator with k-hop neighbourhood discovery, the lower-bound
// adversaries, and the experiment harness regenerating every table and
// quantitative figure of the paper.
//
// Quick start:
//
//	g := klocal.RandomConnected(rand.New(rand.NewSource(1)), 24, 0.1)
//	alg := klocal.Algorithm1()
//	k := alg.MinK(g.N())
//	res := klocal.Route(alg, g, k, s, t)
//	fmt.Println(res.Outcome, res.Route)
package klocal

import (
	"math/rand"

	"klocal/internal/adversary"
	"klocal/internal/bigraph"
	"klocal/internal/churn"
	"klocal/internal/digraph"
	"klocal/internal/diroute"
	"klocal/internal/engine"
	"klocal/internal/exper"
	"klocal/internal/fault"
	"klocal/internal/flood"
	"klocal/internal/gen"
	"klocal/internal/geom"
	"klocal/internal/georoute"
	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/nbhd"
	"klocal/internal/netsim"
	"klocal/internal/prep"
	"klocal/internal/route"
	"klocal/internal/sim"
	"klocal/internal/stateful"
	"klocal/internal/tables"
	"klocal/internal/trace"
	"klocal/internal/verify"
)

// Core graph types.
type (
	// Graph is an immutable undirected simple graph with unique integer
	// vertex labels.
	Graph = graph.Graph
	// Vertex is a node label.
	Vertex = graph.Vertex
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Builder accumulates vertices and edges into a Graph.
	Builder = graph.Builder
)

// NoVertex is the sentinel for "no vertex" (the paper's ⊥).
const NoVertex = graph.NoVertex

// Infinity is the distance between disconnected vertices.
const Infinity = graph.Infinity

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// NewEdge returns the normalized edge {u, v}.
func NewEdge(u, v Vertex) Edge { return graph.NewEdge(u, v) }

// FromEdges builds a graph from an edge list.
func FromEdges(edges []Edge, isolated ...Vertex) *Graph { return graph.FromEdges(edges, isolated...) }

// Routing types.
type (
	// Algorithm is a routing algorithm; bind it to a network and locality
	// with Bind, or use Route.
	Algorithm = route.Algorithm
	// RoutingFunc is the paper's routing function f(s, t, u, v, G_k(u)),
	// bound to a fixed network and locality.
	RoutingFunc = route.Func
	// Result describes one simulated route.
	Result = sim.Result
	// Outcome classifies how a route ended.
	Outcome = sim.Outcome
	// Neighborhood is the k-neighbourhood G_k(u).
	Neighborhood = nbhd.Neighborhood
	// LocalComponent is a classified local component of a view.
	LocalComponent = nbhd.Component
	// View is the preprocessed local view G'_k(u) with dormant edges
	// removed.
	View = prep.View
	// Network is the concurrent message-passing simulator with k-hop
	// neighbourhood discovery.
	Network = netsim.Network
	// NetworkStats is the protocol-cost snapshot of a Network.
	NetworkStats = netsim.Stats
	// SendResult is the detailed outcome of one routed message,
	// including link-layer retries and the fault events encountered.
	SendResult = netsim.SendResult
	// FaultPlan configures the deterministic fault injector: loss,
	// duplication, delay, blackout windows, crashes — all derived from
	// one seed.
	FaultPlan = fault.Plan
	// FaultEvent is one fault occurrence on the data path.
	FaultEvent = fault.Event
	// Blackout is a scheduled per-link outage window.
	Blackout = fault.Blackout
	// Crash is a scheduled node outage (permanent or crash-and-restart).
	Crash = fault.Crash
	// Instance is a routing problem: a graph with an origin and a
	// destination.
	Instance = gen.Instance
)

// Typed data-path errors of the faulty network, matchable with errors.Is.
var (
	// ErrPartitioned means the destination is provably outside the live
	// component.
	ErrPartitioned = netsim.ErrPartitioned
	// ErrNodeDown means the origin, destination, or next hop is crashed.
	ErrNodeDown = netsim.ErrNodeDown
	// ErrLinkDown means a link exhausted its retransmission budget.
	ErrLinkDown = netsim.ErrLinkDown
)

// Route outcomes.
const (
	// Delivered means the message reached its destination.
	Delivered = sim.Delivered
	// Looped means the deterministic walk revisited a decision state.
	Looped = sim.Looped
	// Errored means the routing function failed.
	Errored = sim.Errored
	// Exhausted means the step budget ran out (randomized walks only).
	Exhausted = sim.Exhausted
)

// The paper's algorithms and baselines.
var (
	// Algorithm1 is the (n/4)-local origin-aware predecessor-aware
	// algorithm of Theorem 5 (dilation < 7).
	Algorithm1 = route.Algorithm1
	// Algorithm1B is Appendix A's refinement of Algorithm 1 (Theorem 6,
	// dilation < 6).
	Algorithm1B = route.Algorithm1B
	// Algorithm2 is the (n/3)-local origin-oblivious predecessor-aware
	// algorithm of Theorem 7 (dilation < 3, optimal).
	Algorithm2 = route.Algorithm2
	// Algorithm3 is the (n/2)-local fully oblivious shortest-path
	// algorithm of Theorem 8.
	Algorithm3 = route.Algorithm3
	// TreeRightHand is the naive right-hand rule (Figure 7 motivation).
	TreeRightHand = route.TreeRightHand
	// ShortestPathOracle is the centralized routing-table baseline.
	ShortestPathOracle = route.ShortestPathOracle
	// RandomWalk is the randomized reference baseline.
	RandomWalk = route.RandomWalk
)

// Threshold functions T(n).
var (
	// MinK1 is ⌈n/4⌉, the threshold of Algorithms 1 and 1B.
	MinK1 = route.MinK1
	// MinK2 is ⌈n/3⌉, the threshold of Algorithm 2.
	MinK2 = route.MinK2
	// MinK3 is ⌊n/2⌋, the threshold of Algorithm 3.
	MinK3 = route.MinK3
)

// Route binds alg to (g, k) and simulates a single message from s to t,
// using the loop-detection criterion matching the algorithm's awareness.
func Route(alg Algorithm, g *Graph, k int, s, t Vertex) *Result {
	return sim.Run(g, sim.Func(alg.Bind(g, k)), s, t, sim.Options{
		DetectLoops:      !alg.Randomized,
		PredecessorAware: alg.PredecessorAware,
	})
}

// ExtractNeighborhood computes G_k(u), everything node u may know.
func ExtractNeighborhood(g *Graph, u Vertex, k int) *Neighborhood {
	return nbhd.Extract(g, u, k)
}

// Preprocess computes the routing view G'_k(u) (dormant edges removed,
// components classified).
func Preprocess(g *Graph, u Vertex, k int) *View { return prep.Preprocess(g, u, k) }

// ConsistentSubgraph returns g restricted to its globally consistent
// edges at locality k (Lemmas 3 and 5: connected, girth > 2k).
func ConsistentSubgraph(g *Graph, k int) *Graph { return prep.ConsistentSubgraph(g, k) }

// NewNetwork prepares a concurrent message-passing network over g at
// locality k routing with alg. Call Start, Discover, Send..., Stop.
func NewNetwork(g *Graph, k int, alg Algorithm) *Network { return netsim.New(g, k, alg) }

// NewFaultyNetwork is NewNetwork under a fault plan: every link-level
// and node-level fault is drawn deterministically from the plan's seed,
// and discovery runs the loss-tolerant ack/retransmit protocol.
func NewFaultyNetwork(g *Graph, k int, alg Algorithm, plan FaultPlan) *Network {
	return netsim.NewFaulty(g, k, alg, plan)
}

// Generators.
var (
	// Path, Cycle, Star, Spider, Complete, Grid, Theta, Lollipop and
	// Caterpillar build the standard topologies used by the experiments.
	Path        = gen.Path
	Cycle       = gen.Cycle
	Star        = gen.Star
	Spider      = gen.Spider
	Complete    = gen.Complete
	Grid        = gen.Grid
	Theta       = gen.Theta
	Lollipop    = gen.Lollipop
	Caterpillar = gen.Caterpillar
	Barbell     = gen.Barbell
	Hypercube   = gen.Hypercube
	Wheel       = gen.Wheel
	BinaryTree  = gen.BinaryTree
	// RandomTree and RandomConnected build randomized topologies.
	RandomTree      = gen.RandomTree
	RandomConnected = gen.RandomConnected
	// RandomLabelPermutation is the adversarial relabelling.
	RandomLabelPermutation = gen.RandomLabelPermutation
	// ConnectedGraphs enumerates every connected labelled graph on up to
	// 8 vertices.
	ConnectedGraphs = gen.ConnectedGraphs
)

// Paper constructions.
var (
	// NewTheorem1Family, NewTheorem2Family and NewTheorem3Family build
	// the counterexample families of Figures 3–5.
	NewTheorem1Family = gen.NewTheorem1Family
	NewTheorem2Family = gen.NewTheorem2Family
	NewTheorem3Family = gen.NewTheorem3Family
	// NewFig7, NewFig13 and NewFig17 build the extremal constructions.
	NewFig7  = gen.NewFig7
	NewFig13 = gen.NewFig13
	NewFig17 = gen.NewFig17
)

// Lower-bound adversaries.
var (
	// ReplayTheorem1, ReplayTheorem2 and ReplayTheorem3 replay the
	// strategy enumerations of the impossibility proofs (Tables 3/4).
	ReplayTheorem1 = adversary.ReplayTheorem1
	ReplayTheorem2 = adversary.ReplayTheorem2
	ReplayTheorem3 = adversary.ReplayTheorem3
	// DilationPath builds Theorem 4's extremal instance; the route of any
	// successful k-local algorithm on it has length ≥ 2n−3k−1.
	DilationPath = adversary.DilationPath
	// LowerBoundDilation is (2n−3k−1)/(k+1) → 2n/k − 3.
	LowerBoundDilation = adversary.LowerBoundDilation
	// CircularPermutations enumerates Lemma 1's forced strategy set.
	CircularPermutations = adversary.CircularPermutations
	// ExhaustiveTheorem1 and ExhaustiveTheorem2 drop the Lemma 1
	// reduction and check every d^d hub function against the witness
	// graphs — computational proofs of the lower bounds.
	ExhaustiveTheorem1 = adversary.ExhaustiveTheorem1
	ExhaustiveTheorem2 = adversary.ExhaustiveTheorem2
	ExhaustiveTheorem3 = adversary.ExhaustiveTheorem3
)

// Experiments (one per paper table/figure; see cmd/tables).
var (
	Fig1   = exper.Fig1
	Table1 = exper.Table1
	Table2 = exper.Table2
	Table3 = exper.Table3
	Table4 = exper.Table4
	Fig7   = exper.Fig7
	Fig13  = exper.Fig13
	Fig17  = exper.Fig17
	Sweep  = exper.Sweep
)

// NewRand returns a deterministic RNG for experiment reproducibility.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Dormant-edge policies (the Section 6.1 ablation).
type (
	// DormantPolicy selects which edge of each local cycle preprocessing
	// removes.
	DormantPolicy = prep.Policy
)

// Dormant-edge policy values and the policy-parameterized algorithm
// constructors.
const (
	// PolicyMinRank is the paper's rule; PolicyMaxRank the ablation.
	PolicyMinRank = prep.PolicyMinRank
	PolicyMaxRank = prep.PolicyMaxRank
)

var (
	// Algorithm1Policy, Algorithm1BPolicy and Algorithm2Policy build the
	// algorithms under an explicit dormancy policy.
	Algorithm1Policy  = route.Algorithm1Policy
	Algorithm1BPolicy = route.Algorithm1BPolicy
	Algorithm2Policy  = route.Algorithm2Policy
)

// Position-based routing (the paper's Section 3 world).
type (
	// Point is a planar location.
	Point = geom.Point
	// Embedding is a straight-line graph embedding with its rotation
	// system.
	Embedding = geom.Embedding
	// FaceResult is the outcome of a FACE-1 face-routing run.
	FaceResult = georoute.FaceResult
	// GeoTrap is a plane instance defeating greedy and compass routing.
	GeoTrap = georoute.Trap
)

var (
	// NewEmbedding, RandomPoints, UnitDiskGraph, GabrielGraph,
	// GabrielSubgraph and RelativeNeighborhoodGraph build the geometric
	// substrate.
	NewEmbedding              = geom.NewEmbedding
	RandomPoints              = geom.RandomPoints
	UnitDiskGraph             = geom.UnitDiskGraph
	GabrielGraph              = geom.GabrielGraph
	GabrielSubgraph           = geom.GabrielSubgraph
	RelativeNeighborhoodGraph = geom.RelativeNeighborhoodGraph
	// GreedyRouting, CompassRouting, GreedyCompassRouting and
	// FaceRouting are the Section 3 algorithms; FaceRoute runs FACE-1
	// directly; GreedyTrap builds the defeating instance.
	GreedyRouting        = georoute.Greedy
	CompassRouting       = georoute.Compass
	GreedyCompassRouting = georoute.GreedyCompass
	FaceRouting          = georoute.FaceRouteAlgorithm
	FaceRoute            = georoute.FaceRoute
	GreedyTrap           = georoute.GreedyTrap
)

// Memory-relaxed routing and the baselines of the introduction.
type (
	// StatefulResult is a stateful (message-memory) route.
	StatefulResult = stateful.Result
	// FloodResult is a flooding run.
	FloodResult = flood.Result
	// FullTables and TreeInterval are the table-driven schemes.
	FullTables   = tables.FullTables
	TreeInterval = tables.TreeInterval
)

var (
	// DFSRoute routes with Θ(n log n) message bits at locality 1
	// (Section 6.3's memory relaxation).
	DFSRoute = stateful.DFSRoute
	// Flood and FloodIterativeDeepening are the introduction's strawman.
	Flood                   = flood.Flood
	FloodIterativeDeepening = flood.IterativeDeepening
	// BuildFullTables and BuildTreeInterval construct the table schemes;
	// KLocalBits accounts a k-local algorithm's implicit memory.
	BuildFullTables   = tables.BuildFullTables
	BuildTreeInterval = tables.BuildTreeInterval
	KLocalBits        = tables.KLocalBits
	// MemoryDilation and RandomWalkQuadratic are the corresponding
	// experiments.
	MemoryDilation      = exper.MemoryDilation
	RandomWalkQuadratic = exper.RandomWalkQuadratic
)

// Directed graphs (Section 6.2).
type (
	// Digraph is a simple directed graph; Arc a directed edge.
	Digraph = digraph.Digraph
	// Arc is a directed edge of a Digraph.
	Arc = digraph.Arc
	// OrbitResult is a stateless successor-rule route on a balanced
	// digraph; RotorResult a rotor-router route.
	OrbitResult = diroute.OrbitResult
	// RotorResult is a rotor-router route with node-memory accounting.
	RotorResult = diroute.RotorResult
)

var (
	// NewDigraphBuilder, Circulant and RandomEulerian build directed
	// substrates.
	NewDigraphBuilder = digraph.NewBuilder
	Circulant         = digraph.Circulant
	RandomEulerian    = digraph.RandomEulerian
	// Orbits decomposes a balanced digraph's arcs into successor-rule
	// closed walks; OrbitRoute routes statelessly along one of them;
	// RotorRoute trades node memory for guaranteed delivery;
	// StatelessDefeat finds a pair the stateless rule cannot serve.
	Orbits          = diroute.Orbits
	OrbitRoute      = diroute.OrbitRoute
	RotorRoute      = diroute.RotorRoute
	StatelessDefeat = diroute.StatelessDefeat
)

// Bulk verification (cmd/verify's engine).
type (
	// VerifyConfig selects what the bulk verifier checks.
	VerifyConfig = verify.Config
	// VerifyReport aggregates a verification run.
	VerifyReport = verify.Report
)

var (
	// VerifyExhaustive checks an algorithm over every connected labelled
	// graph of a size; VerifyRandomSample over random populations.
	VerifyExhaustive   = verify.Exhaustive
	VerifyRandomSample = verify.RandomSample
)

// Tracing and rendering helpers.
var (
	// RenderRoute annotates a walk hop by hop against the destination
	// distance; RenderEmbedding rasters an embedded network;
	// RenderAdjacency dumps a topology.
	RenderRoute = trace.RenderRoute
	// RenderRouteEvents is RenderRoute with a lossy network's fault
	// events interleaved at the hops where they fired.
	RenderRouteEvents = trace.RenderRouteEvents
	RenderEmbedding   = trace.RenderEmbedding
	RenderAdjacency   = trace.RenderAdjacency
)

// Degrade sweeps message-loss rate × locality k on the paper graph
// families and reports delivery rate, discovery message overhead, and
// stretch versus the fault-free baseline.
var Degrade = exper.Degrade

// The traffic engine (internal/engine): batched concurrent routing over
// an immutable snapshot with sharded, size-bounded preprocessing.
type (
	// Snapshot is an immutable (network, locality, algorithm) binding
	// with a shared preprocessed-view cache.
	Snapshot = engine.Snapshot
	// SnapshotOptions tune the view cache and prewarming.
	SnapshotOptions = engine.SnapshotOptions
	// Engine is the worker-pool batch router (bounded queue,
	// backpressure, per-worker metric shards).
	Engine = engine.Engine
	// EngineConfig sizes the worker pool and request queue.
	EngineConfig = engine.Config
	// RouteRequest is one (s, t) routing task.
	RouteRequest = engine.Request
	// RouteResponse is one routed task's outcome with latency.
	RouteResponse = engine.Response
	// TrafficWorkload is a deterministic request generator.
	TrafficWorkload = engine.Workload
	// MetricsReport is a merged, renderable metric snapshot
	// (WriteText / WriteJSON).
	MetricsReport = metrics.Report
	// CacheOptions tune the sharded preprocessed-view cache.
	CacheOptions = prep.CacheOptions
	// CacheStats snapshots view-cache activity (hits, misses,
	// evictions, size).
	CacheStats = prep.CacheStats
)

var (
	// NewSnapshot and NewSnapshotOpts bind an algorithm to a network for
	// batched routing (k = 0 means the algorithm's threshold).
	NewSnapshot     = engine.NewSnapshot
	NewSnapshotOpts = engine.NewSnapshotOpts
	// NewEngine starts a worker pool over a snapshot.
	NewEngine = engine.New
	// RouteAll routes a batch one-shot and returns ordered responses
	// plus the merged metrics report.
	RouteAll = engine.RouteAll
	// UniformWorkload, ZipfWorkload, AllPairsWorkload and
	// AdversarialWorkload are the engine's request generators;
	// NewTrafficWorkload resolves one by name.
	UniformWorkload     = engine.Uniform
	ZipfWorkload        = engine.Zipf
	AllPairsWorkload    = engine.AllPairs
	AdversarialWorkload = engine.Adversarial
	NewTrafficWorkload  = engine.NewWorkload
	// TakeRequests materializes the next n requests of a workload.
	TakeRequests = engine.Take
	// ZipfSkew is the default Zipf exponent for skewed workloads.
	ZipfSkew = engine.ZipfSkew
	// AllPairsCount is the number of ordered pairs of a graph.
	AllPairsCount = engine.PairCount
	// SweepParallel is the locality sweep routed through the engine —
	// identical points, concurrent wall clock.
	SweepParallel = exper.SweepParallel
	// NewPreprocessorOpts builds a sharded, size-bounded view cache for
	// direct use with Algorithm.BindCached.
	NewPreprocessorOpts = prep.NewPreprocessorOpts
)

// The mmap-able CSR graph store (internal/bigraph, DESIGN.md §12):
// million-node topologies served without materializing a map-based
// graph. A *Graph is itself a GraphStore, so every store-suffixed
// constructor below also accepts classic in-memory graphs.
type (
	// GraphStore is the minimal read-only topology contract routing
	// needs (see route/doc.go for the locality terms).
	GraphStore = bigraph.Store
	// CSR is the int-indexed compressed-sparse-row store behind .csr
	// files, with zero-alloc G_k(u) extraction.
	CSR = bigraph.CSR
)

var (
	// LoadGraphFile opens a topology file by extension: binary ".csr"
	// (mmap'd where the platform allows), or an edge list
	// (".txt"/".txt.gz"). Close the returned CSR when done.
	LoadGraphFile = bigraph.LoadFile
	// CSRFromGraph converts an in-memory graph to its CSR form.
	CSRFromGraph = bigraph.FromGraph
	// GridCSR, TreeCSR and RandomRegularCSR stream million-node topology
	// families straight into CSR form without a map-based intermediate.
	GridCSR          = gen.GridCSR
	TreeCSR          = gen.TreeCSR
	RandomRegularCSR = gen.RandomRegularCSR
	// NewCSRScratch allocates the reusable scratch for zero-alloc
	// CSR.Extract calls.
	NewCSRScratch = bigraph.NewScratch
	// NewSnapshotStore binds an algorithm to any GraphStore; walks over
	// store-backed snapshots leave Result.Dist at 0 (unknown).
	NewSnapshotStore = engine.NewSnapshotStore
	// UniformStoreWorkload, ZipfStoreWorkload and AllPairsStoreWorkload
	// are the request generators over a GraphStore;
	// NewTrafficWorkloadStore resolves one by name.
	UniformStoreWorkload    = engine.UniformStore
	ZipfStoreWorkload       = engine.ZipfStore
	AllPairsStoreWorkload   = engine.AllPairsStore
	NewTrafficWorkloadStore = engine.NewWorkloadStore
)

// Incremental topology churn (internal/churn, DESIGN.md §15): deltas
// applied copy-on-write with k-radius dirty sets, so live engines swap
// snapshots that re-derive only the views within distance k of the
// touched endpoints.
type (
	// TopologyDelta is one topology mutation (edge flap, vertex
	// arrival or departure).
	TopologyDelta = churn.Delta
	// ChurnOp enumerates the delta operations.
	ChurnOp = churn.Op
	// ChurnScheduler emits an endless, deterministic stream of valid
	// deltas against an evolving graph.
	ChurnScheduler = churn.Scheduler
)

// The delta operations.
const (
	AddEdge      = churn.AddEdge
	RemoveEdge   = churn.RemoveEdge
	AddVertex    = churn.AddVertex
	RemoveVertex = churn.RemoveVertex
)

var (
	// ApplyDelta applies one delta copy-on-write, returning the derived
	// graph and the k-radius dirty set; ApplyDeltas applies a batch.
	ApplyDelta  = churn.Apply
	ApplyDeltas = churn.ApplyAll
	// DiffGraphs expresses one graph as a delta batch over another;
	// ChurnDirtySet is the k-radius dirty set of an arbitrary batch.
	DiffGraphs    = churn.Diff
	ChurnDirtySet = churn.DirtySet
	// NewChurnScheduler streams deterministic valid deltas;
	// ScheduleDeltas materializes a fixed-length schedule.
	NewChurnScheduler = churn.NewScheduler
	ScheduleDeltas    = churn.ScheduleDeltas
	// HotspotWorkload routes to destinations skewed by approximate
	// betweenness centrality (the "core router" traffic shape).
	HotspotWorkload      = engine.Hotspot
	HotspotStoreWorkload = engine.HotspotStore
	// NewMetricsShard allocates a metrics shard for caller-side
	// instrumentation (e.g. loadgen's churn loop).
	NewMetricsShard = metrics.NewShard
)

// MetricsShard is one writer's metric namespace (counters +
// histograms); Snapshot renders it as a MetricsReport.
type MetricsShard = metrics.Shard
