package klocal_test

import (
	"fmt"

	"klocal"
)

// Route a message on a ring with the fully oblivious ⌊n/2⌋-local
// algorithm: it follows a shortest path (Theorem 8).
func ExampleRoute() {
	g := klocal.Cycle(12)
	alg := klocal.Algorithm3()
	res := klocal.Route(alg, g, alg.MinK(g.N()), 0, 5)
	fmt.Println(res.Outcome, res.Len(), "hops, dilation", res.Dilation())
	// Output: delivered 5 hops, dilation 1
}

// Algorithm 1 delivers at k = ⌈n/4⌉ with dilation below 7; on the
// Figure 13 extremal family its route is exactly 2n−k−3.
func ExampleAlgorithm1() {
	f, err := klocal.NewFig13(40, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	res := klocal.Route(klocal.Algorithm1(), f.G, 10, f.S, f.T)
	fmt.Println(res.Outcome, res.Len() == 2*40-10-3)
	// Output: delivered true
}

// The concurrent network simulator: nodes discover their k-neighbourhoods
// with a TTL-scoped flood, then route hop by hop over channels.
func ExampleNewNetwork() {
	g := klocal.Cycle(10)
	alg := klocal.Algorithm2()
	nw := klocal.NewNetwork(g, alg.MinK(g.N()), alg)
	nw.Start()
	defer nw.Stop()
	if err := nw.Discover(); err != nil {
		fmt.Println(err)
		return
	}
	route, err := nw.Send(0, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(route)
	// Output: [0 1 2 3 4]
}

// Below the n/4 threshold, every admissible strategy is defeated by some
// member of the Theorem 1 family.
func ExampleReplayTheorem1() {
	rep, err := klocal.ReplayTheorem1(19)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(rep.Strategies), "strategies, all defeated:", rep.EveryStrategyDefeated())
	// Output: 6 strategies, all defeated: true
}

// The consistent subgraph (Lemmas 3 and 5): still connected, but with no
// cycle of length ≤ 2k.
func ExampleConsistentSubgraph() {
	g := klocal.Complete(6)
	sub := klocal.ConsistentSubgraph(g, 2)
	fmt.Println("connected:", sub.Connected(), "girth >", 4, ":", sub.Girth() > 4)
	// Output: connected: true girth > 4 : true
}

// Face routing (Section 3) delivers on the plane trap that defeats greedy
// routing, at the cost of message-carried state.
func ExampleFaceRoute() {
	trap := klocal.GreedyTrap()
	greedy := klocal.Route(klocal.GreedyRouting(trap.Emb), trap.Emb.G, 1, trap.S, trap.T)
	face, err := klocal.FaceRoute(trap.Emb, trap.S, trap.T)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("greedy:", greedy.Outcome, "— face routing:", face.Delivered)
	// Output: greedy: looped — face routing: true
}

// Message-carried memory (Section 6.3): a DFS token buys guaranteed
// delivery at locality 1 with Θ(n log n) state bits.
func ExampleDFSRoute() {
	g := klocal.Spider(3, 4)
	res, err := klocal.DFSRoute(g, 4, 12)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered:", res.Delivered, "state bits >", 0, ":", res.PeakStateBits > 0)
	// Output: delivered: true state bits > 0 : true
}
