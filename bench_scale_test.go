package klocal_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"klocal"
)

// Scale benchmarks for the CSR graph store: routing throughput and
// store footprint on grids from 10^4 to 10^6 vertices, served the way
// klocald serves them — streamed to a binary .csr file, mmap'd back,
// and routed store-backed under a Zipf workload. `make bench-scale`
// runs these and emits BENCH_scale.json.
//
// k is fixed and small: the paper's thresholds are Θ(n), so at these
// sizes the threshold view would be the whole graph. The benchmarks
// measure the store and engine in the regime the scale path targets —
// bounded views over a topology that never materializes as a map-based
// graph. Delivery is therefore best-effort (Zipf-adjacent pairs
// deliver, far pairs fail fast at the step budget); the throughput
// number counts routed requests either way.

const scaleK = 8

// scaleSides are the grid side lengths: 10^4, ~10^5, 10^6 vertices.
var scaleSides = []int{100, 317, 1000}

// openScaleCSR streams a side×side grid into a .csr file and maps it
// back — the full on-disk round trip, not just an in-memory build.
func openScaleCSR(b *testing.B, side int) *klocal.CSR {
	b.Helper()
	c, err := klocal.GridCSR(side, side)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "grid.csr")
	if err := c.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	m, err := klocal.LoadGraphFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	return m
}

// BenchmarkScaleGridZipf is the headline scale number: store-backed
// routing throughput (msgs/sec) and store footprint (bytes/vertex) per
// size. Each iteration routes one Zipf batch through a fresh engine
// over a shared snapshot, so the first iteration pays the cold view
// cache and later ones measure steady-state serving.
func BenchmarkScaleGridZipf(b *testing.B) {
	const batch = 512
	for _, side := range scaleSides {
		c := openScaleCSR(b, side)
		n := c.N()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			snap, err := klocal.NewSnapshotStore(c, scaleK, klocal.Algorithm2(), klocal.SnapshotOptions{})
			if err != nil {
				b.Fatal(err)
			}
			// A steeper-than-default skew keeps endpoint mass near the grid
			// corner at n=10^6, so the batch exercises both the delivery
			// path (adjacent pairs) and the fail-fast path (far pairs).
			reqs := klocal.TakeRequests(klocal.ZipfStoreWorkload(klocal.NewRand(1), c, 1.5), batch)
			delivered := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := klocal.RouteAll(snap, reqs,
					klocal.EngineConfig{MaxSteps: 2 * scaleK})
				if err != nil {
					b.Fatal(err)
				}
				delivered = rep.Counter("delivered")
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
			b.ReportMetric(float64(c.Bytes())/float64(n), "bytes/vertex")
			b.ReportMetric(float64(delivered)/float64(batch), "deliveryRate")
		})
	}
}

// BenchmarkScaleExtract measures the raw G_k(u) primitive under the
// same sizes: mmap'd CSR, zero-allocation scratch extraction at Zipf
// sources (views/sec; the alloc gate in internal/bigraph pins this path
// to 0 allocs/op).
func BenchmarkScaleExtract(b *testing.B) {
	for _, side := range scaleSides {
		c := openScaleCSR(b, side)
		n := c.N()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sc := klocal.NewCSRScratch()
			z := klocal.ZipfStoreWorkload(klocal.NewRand(2), c, 0)
			srcs := klocal.TakeRequests(z, 1024)
			// One warm call sizes the scratch's epoch arrays to n; every
			// timed extraction after that is allocation-free.
			if err := c.Extract(srcs[0].S, scaleK, sc); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Extract(srcs[i%len(srcs)].S, scaleK, sc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "views/sec")
			b.ReportMetric(float64(c.Bytes())/float64(n), "bytes/vertex")
		})
	}
}
