// Quickstart: build a small network, run every k-local routing algorithm
// at its own threshold, and print the routes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 20-node network: a ring with a few chords and a pendant path —
	// big enough that no node sees the whole topology at k = n/4.
	b := klocal.NewBuilder()
	for i := 0; i < 16; i++ {
		b.AddEdge(klocal.Vertex(i), klocal.Vertex((i+1)%16))
	}
	b.AddEdge(0, 5).AddEdge(3, 12)
	b.AddPath(8, 16, 17, 18, 19)
	g := b.Build()

	s, t := klocal.Vertex(0), klocal.Vertex(19)
	fmt.Printf("network: n=%d m=%d, routing %d -> %d (shortest %d hops)\n\n",
		g.N(), g.M(), s, t, g.Dist(s, t))

	algorithms := []klocal.Algorithm{
		klocal.Algorithm1(),  // origin-aware, predecessor-aware, k >= n/4
		klocal.Algorithm1B(), // same, dilation < 6
		klocal.Algorithm2(),  // origin-oblivious, k >= n/3
		klocal.Algorithm3(),  // fully oblivious shortest paths, k >= n/2
	}
	for _, alg := range algorithms {
		k := alg.MinK(g.N())
		res := klocal.Route(alg, g, k, s, t)
		if res.Outcome != klocal.Delivered {
			return fmt.Errorf("%s did not deliver: %v", alg.Name, res.Outcome)
		}
		fmt.Printf("%-12s k=%-2d  %2d hops (dilation %.2f)  route %v\n",
			alg.Name, k, res.Len(), res.Dilation(), res.Route)
	}

	// What does a node actually know? Inspect a k-neighbourhood and the
	// preprocessed routing view.
	k := klocal.MinK1(g.N())
	view := klocal.Preprocess(g, s, k)
	fmt.Printf("\nnode %d at k=%d: |G_k| = %d vertices, %d dormant edge(s), active degree %d\n",
		s, k, view.Raw.G.N(), len(view.Dormant), view.ActiveDegree())
	return nil
}
