// Ad hoc network scenario: nodes are goroutines exchanging messages over
// channels; each discovers its k-neighbourhood with a TTL-scoped
// link-state flood and then routes many concurrent flows with an
// origin-oblivious k-local algorithm — the setting the paper's
// introduction motivates.
//
//	go run ./examples/adhoc [-n 48] [-flows 200] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adhoc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n     = flag.Int("n", 48, "number of nodes")
		flows = flag.Int("flows", 200, "number of concurrent flows")
		seed  = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	rng := klocal.NewRand(*seed)
	g := klocal.RandomConnected(rng, *n, 0.05)
	alg := klocal.Algorithm2()
	k := alg.MinK(*n)
	fmt.Printf("ad hoc network: n=%d m=%d, %s at k=%d (threshold n/3)\n", g.N(), g.M(), alg.Name, k)

	nw := klocal.NewNetwork(g, k, alg)
	nw.Start()
	defer nw.Stop()
	if err := nw.Discover(); err != nil {
		return err
	}
	fmt.Println("k-hop neighbourhood discovery complete")

	type flowResult struct {
		s, t klocal.Vertex
		hops int
		err  error
	}
	results := make(chan flowResult, *flows)
	var wg sync.WaitGroup
	vs := g.Vertices()
	for i := 0; i < *flows; i++ {
		s := vs[rng.Intn(len(vs))]
		t := vs[rng.Intn(len(vs))]
		wg.Add(1)
		go func(s, t klocal.Vertex) {
			defer wg.Done()
			route, err := nw.Send(s, t)
			results <- flowResult{s: s, t: t, hops: len(route) - 1, err: err}
		}(s, t)
	}
	wg.Wait()
	close(results)

	var (
		delivered, totalHops int
		worst                float64
		worstFlow            flowResult
	)
	for r := range results {
		if r.err != nil {
			return fmt.Errorf("flow %d->%d: %w", r.s, r.t, r.err)
		}
		delivered++
		totalHops += r.hops
		if d := g.Dist(r.s, r.t); d > 0 {
			if dil := float64(r.hops) / float64(d); dil > worst {
				worst, worstFlow = dil, r
			}
		}
	}
	fmt.Printf("flows delivered: %d/%d, total %d hops\n", delivered, *flows, totalHops)
	fmt.Printf("worst dilation: %.3f (flow %d->%d, %d hops over dist %d) — Theorem 7 guarantees < 3\n",
		worst, worstFlow.s, worstFlow.t, worstFlow.hops, g.Dist(worstFlow.s, worstFlow.t))
	return nil
}
