// Position-based routing (the paper's Section 3 world): greedy and
// compass routing are 1-local but defeated by a small planar trap; face
// routing delivers everywhere on plane embeddings at the price of
// Θ(log n) bits of message state — the trade-off the paper's stateless
// model excludes.
//
//	go run ./examples/georouting [-n 40] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "georouting:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n    = flag.Int("n", 40, "number of wireless nodes")
		seed = flag.Int64("seed", 3, "random seed")
	)
	flag.Parse()

	// Part 1: the trap. A six-node plane graph where both greedy and
	// compass ping-pong forever one hop from the destination.
	trap := klocal.GreedyTrap()
	fmt.Println("trap: a plane graph with a greedy local minimum at s")
	for _, alg := range []klocal.Algorithm{
		klocal.GreedyRouting(trap.Emb),
		klocal.CompassRouting(trap.Emb),
		klocal.GreedyCompassRouting(trap.Emb),
	} {
		res := klocal.Route(alg, trap.Emb.G, 1, trap.S, trap.T)
		fmt.Printf("  %-14s %v (route %v)\n", alg.Name, res.Outcome, res.Route)
	}
	face, err := klocal.FaceRoute(trap.Emb, trap.S, trap.T)
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s delivered=%v in %d hops carrying %d state bits (route %v)\n\n",
		"FaceRouting", face.Delivered, face.Len(), face.StateBits, face.Route)

	// Part 2: an ad hoc wireless network — a unit disk graph planarized
	// with the Gabriel condition, the classic face-routing substrate.
	rng := klocal.NewRand(*seed)
	pos := klocal.RandomPoints(rng, *n)
	udg := klocal.UnitDiskGraph(pos, 0.3)
	if !udg.Connected() {
		fmt.Println("sparse draw: unit disk graph disconnected, using the Gabriel graph instead")
		udg = klocal.GabrielGraph(pos)
	}
	planar := klocal.GabrielSubgraph(udg, pos)
	emb, err := klocal.NewEmbedding(planar, pos)
	if err != nil {
		return err
	}
	fmt.Printf("unit disk graph: n=%d m=%d; Gabriel planarization: m=%d\n", udg.N(), udg.M(), planar.M())

	vs := planar.Vertices()
	greedyOK, faceOK, pairs := 0, 0, 0
	totalFaceHops := 0
	greedy := klocal.GreedyRouting(emb)
	for i := 0; i < 200; i++ {
		s := vs[rng.Intn(len(vs))]
		t := vs[rng.Intn(len(vs))]
		if s == t {
			continue
		}
		pairs++
		if klocal.Route(greedy, planar, 1, s, t).Outcome == klocal.Delivered {
			greedyOK++
		}
		fr, err := klocal.FaceRoute(emb, s, t)
		if err != nil {
			return err
		}
		if fr.Delivered {
			faceOK++
			totalFaceHops += fr.Len()
		}
	}
	fmt.Printf("greedy:       %d/%d pairs delivered (local minima defeat the rest)\n", greedyOK, pairs)
	fmt.Printf("face routing: %d/%d pairs delivered, %d total hops — guaranteed, but stateful\n",
		faceOK, pairs, totalFaceHops)
	fmt.Println("\nthe paper's result: WITHOUT positions (and without state), guaranteed delivery")
	fmt.Printf("needs locality k >= n/4 = %d on this network — local information alone is not enough.\n",
		klocal.MinK1(planar.N()))
	return nil
}
