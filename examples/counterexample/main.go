// Counterexample: replays Theorem 1's impossibility proof. Below the n/4
// threshold, every origin-aware predecessor-aware routing strategy —
// Lemma 1 forces each to be one of six circular permutations at the
// degree-4 hub — is defeated by one of three graphs that look identical
// from the hub.
//
//	go run ./examples/counterexample [-n 31]
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "counterexample:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 31, "family size (>= 11)")
	flag.Parse()

	rep, err := klocal.ReplayTheorem1(*n)
	if err != nil {
		return err
	}
	fam := rep.Family
	fmt.Printf("Theorem 1 family, n=%d: hub %d with four arms of %d nodes; k = r = %d < T(n) = %d\n",
		*n, fam.Hub, fam.R, fam.R, klocal.MinK1(*n))
	fmt.Printf("the hub's %d-neighbourhood is the same tree in G1, G2 and G3;\n", fam.R)
	fmt.Println("t hides behind a different arm in each variant, the other two arms are joined:")
	fmt.Println()

	for i, strat := range rep.Strategies {
		fmt.Printf("strategy %d — circular permutation %v:\n", i+1, strat.Perm)
		for j, o := range rep.Outcomes[i] {
			verdict := "delivers"
			if o != klocal.Delivered {
				verdict = "LOOPS (message never enters the arm hiding t)"
			}
			fmt.Printf("  on G%d: %s\n", j+1, verdict)
		}
	}
	fmt.Println()
	if rep.EveryStrategyDefeated() {
		fmt.Println("=> every admissible strategy is defeated by some family member:")
		fmt.Printf("   no origin-aware predecessor-aware %d-local algorithm can guarantee delivery at n=%d.\n",
			fam.R, *n)
	} else {
		fmt.Println("=> UNEXPECTED: a strategy survived; the replay does not match the theorem")
	}

	// The positive side of the same threshold: one unit more locality and
	// Algorithm 1 delivers on all three variants.
	k := klocal.MinK1(*n)
	fmt.Printf("\nwith k = T(n) = %d, Algorithm 1 delivers on every variant:\n", k)
	for j, inst := range fam.Variants {
		res := klocal.Route(klocal.Algorithm1(), inst.G, k, inst.S, inst.T)
		fmt.Printf("  G%d: %v in %d hops (dilation %.2f)\n", j+1, res.Outcome, res.Len(), res.Dilation())
	}
	return nil
}
