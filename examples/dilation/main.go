// Dilation study: measures how route quality degrades as locality
// shrinks, reproducing Table 2's landscape — the lower bound
// S(k) = 2n/k − 3 on the Theorem 4 adversary versus what each algorithm
// actually achieves, plus the extremal Figure 13/17 families.
//
//	go run ./examples/dilation [-n 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dilation:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 64, "network size")
	flag.Parse()

	fmt.Printf("dilation on the Theorem 4 adversary path, n=%d (lower bound S(k)=(2n-3k-1)/(k+1)):\n", *n)
	fmt.Printf("%-6s %-10s %-14s %-14s %-14s\n", "k", "S(k)", "Algorithm1", "Algorithm1B", "Algorithm2")
	for _, k := range []int{klocal.MinK1(*n), klocal.MinK1(*n) + 2, klocal.MinK2(*n), (*n - 2) / 2} {
		inst, err := klocal.DilationPath(*n, k)
		if err != nil {
			continue
		}
		row := fmt.Sprintf("%-6d %-10.3f", k, klocal.LowerBoundDilation(*n, k))
		for _, alg := range []klocal.Algorithm{klocal.Algorithm1(), klocal.Algorithm1B(), klocal.Algorithm2()} {
			res := klocal.Route(alg, inst.G, k, inst.S, inst.T)
			cell := "failed"
			if res.Outcome == klocal.Delivered {
				cell = fmt.Sprintf("%.3f", res.Dilation())
			}
			row += fmt.Sprintf(" %-14s", cell)
		}
		fmt.Println(row)
	}

	fmt.Println("\nextremal families at k = n/4 (paper: Algorithm 1 -> 7, Algorithm 1B -> 6):")
	fmt.Printf("%-6s %-6s %-22s %-22s\n", "n", "k", "Fig13: Alg1 dilation", "Fig17: Alg1B dilation")
	for _, k := range []int{8, 16, 32, 64} {
		nn := 4 * k
		f13, err := klocal.NewFig13(nn, k)
		if err != nil {
			return err
		}
		r13 := klocal.Route(klocal.Algorithm1(), f13.G, k, f13.S, f13.T)
		f17, err := klocal.NewFig17(nn, k)
		if err != nil {
			return err
		}
		r17 := klocal.Route(klocal.Algorithm1B(), f17.G, k, f17.S, f17.T)
		fmt.Printf("%-6d %-6d %-22s %-22s\n", nn, k,
			fmt.Sprintf("%.4f (7-96/(n+12)=%.4f)", r13.Dilation(), 7-96/float64(nn+12)),
			fmt.Sprintf("%.4f (route n+2k-6-2δ*)", r17.Dilation()))
	}

	fmt.Println("\nrandomized baseline for contrast (random walk on the adversary path):")
	k := klocal.MinK1(*n)
	inst, err := klocal.DilationPath(*n, k)
	if err != nil {
		return err
	}
	rw := klocal.Route(klocal.RandomWalk(1), inst.G, k, inst.S, inst.T)
	fmt.Printf("  random walk: outcome %v, %d hops vs dist %d (deterministic bound %d)\n",
		rw.Outcome, rw.Len(), inst.G.Dist(inst.S, inst.T), 2*(*n)-3*k-1)
	return nil
}
