// Directed routing (the paper's Section 6.2): stateless 1-local routing
// is impossible on digraphs in general — the successor rule confines a
// message to one orbit of an arc permutation — while a little memory
// (rotor pointers at nodes) restores guaranteed delivery.
//
//	go run ./examples/directed [-n 12] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "directed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n    = flag.Int("n", 12, "number of nodes")
		seed = flag.Int64("seed", 5, "random seed")
	)
	flag.Parse()

	rng := klocal.NewRand(*seed)

	// Search random Eulerian digraphs for one whose successor orbits do
	// not serve every pair.
	for trial := 0; trial < 500; trial++ {
		d := klocal.RandomEulerian(rng, *n, 2)
		orbits, err := klocal.Orbits(d)
		if err != nil {
			return err
		}
		s, t, defeated := klocal.StatelessDefeat(d)
		if !defeated {
			continue
		}
		fmt.Printf("Eulerian digraph: n=%d arcs=%d, successor orbits: %d\n", d.N(), d.M(), len(orbits))
		for i, orbit := range orbits {
			fmt.Printf("  orbit %d: %d arcs\n", i+1, len(orbit))
		}
		fmt.Printf("\nstateless successor rule from %d to %d:\n", s, t)
		or, err := klocal.OrbitRoute(d, s, t)
		if err != nil {
			return err
		}
		fmt.Printf("  orbit closed after %d hops without reaching %d -> FAILS\n", or.OrbitLen, t)
		fmt.Println("  (every stateless 1-local rule is confined to an orbit: Fraser et al.'s")
		fmt.Println("   impossibility for directed graphs, in miniature)")

		rr, err := klocal.RotorRoute(d, s, t, 0)
		if err != nil {
			return err
		}
		fmt.Printf("\nrotor-router walk (per-node port pointers, %d bits of node memory total):\n", rr.NodeBits)
		fmt.Printf("  delivered=%v in %d hops\n", rr.Delivered, len(rr.Route)-1)
		return nil
	}
	fmt.Println("no defeating instance found; try another seed")
	return nil
}
